"""Serve a trained HERO team and query it like a fleet of vehicles.

Demonstrates the PR 7 serving stack end to end:

1. train a tiny team (or load an existing checkpoint via ``--checkpoint``),
2. save it in the versioned serving format (docs/SERVING.md),
3. start a socket :class:`repro.PolicyServer`,
4. run N client threads — each owns one slot and drives its own copy of
   the environment batch row — and print the served greedy actions.

Usage::

    python examples/serve_policy.py [--slots 4] [--steps 10]
    python examples/serve_policy.py --checkpoint team.npz
"""

import argparse
import os
import tempfile
import threading

import numpy as np

from repro import PolicyClient, PolicyServer, load_policy
from repro.envs import VectorEnv
from repro.serving import split_hero_batch


def make_tiny_checkpoint(path: str, seed: int) -> None:
    """Train a deliberately tiny team — the point here is the serving path."""
    from repro import TrainingConfig, train_hero, train_low_level_skills
    from repro.core import HeroTeam
    from repro.envs import CooperativeLaneChangeEnv
    from repro.experiments.common import bench_scenario

    config = TrainingConfig(seed=seed)
    config.scenario = bench_scenario()
    skills, _ = train_low_level_skills(config, episodes=10)
    env = CooperativeLaneChangeEnv(scenario=config.scenario)
    team = HeroTeam(env, np.random.default_rng(seed), skills=skills)
    train_hero(env, team, episodes=5, config=config, checkpoint_path=path)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--checkpoint", default=None)
    parser.add_argument("--slots", type=int, default=4)
    parser.add_argument("--steps", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    tmpdir = None
    path = args.checkpoint
    if path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-serve-")
        path = os.path.join(tmpdir, "team.npz")
        print("training a tiny team (pass --checkpoint to skip)...")
        make_tiny_checkpoint(path, args.seed)

    policy = load_policy(path)
    print(f"loaded {policy.method} policy: "
          f"{policy.checkpoint.flat_params.size} parameters")

    # One vectorized env stands in for the clients' worlds: row i is the
    # world client i observes.  Real deployments would have one scalar env
    # (one vehicle fleet) per client process.
    vec_env = VectorEnv(args.slots, scenario=policy.scenario,
                        rewards=policy.rewards)
    obs = vec_env.reset(list(range(args.slots)))

    with PolicyServer(policy, num_slots=args.slots) as server:
        host, port = server.serve()
        print(f"socket server on {host}:{port}")

        for step in range(args.steps):
            requests = split_hero_batch(obs, vec_env.agent_d, vec_env.agent_heading)
            actions = [None] * args.slots

            def client_turn(slot, request, out=actions):
                with PolicyClient(host, port) as client:
                    out[slot] = client.act(request)

            threads = [
                threading.Thread(target=client_turn, args=(r.slot, r))
                for r in requests
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            stacked = np.stack(actions)
            obs, rewards, dones, infos = vec_env.step(stacked)
            print(f"step {step}: mean linear speed "
                  f"{stacked[:, :, 0].mean():.4f}, reward {rewards.mean():+.3f}")
            for i in np.flatnonzero(dones):
                server.reset_slot(int(i))

    print("done")


if __name__ == "__main__":
    main()
