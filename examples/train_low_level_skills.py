"""Train the low-level driving skills (Algorithm 2 / Fig. 8).

Trains the two SAC skills with their intrinsic reward functions and prints
the learning curves in the early/mid/late format. Trained weights can be
saved and reused by the other examples.

Usage::

    python examples/train_low_level_skills.py --episodes 400 --save skills.npz
"""

import argparse

import numpy as np

from repro.config import TrainingConfig
from repro.core import train_low_level_skills
from repro.experiments.common import bench_scenario
from repro.experiments.reporting import curve_summary, print_learning_curves


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--save", type=str, default=None, help="path for .npz weights")
    args = parser.parse_args()

    config = TrainingConfig(seed=args.seed)
    config.scenario = bench_scenario()
    skills, logger = train_low_level_skills(config, episodes=args.episodes)

    print_learning_curves(
        "Fig. 8(a) lane keeping",
        {"sac": logger.values("lane_keeping/episode_reward")},
    )
    print_learning_curves(
        "Fig. 8(b) lane change",
        {"sac": logger.values("lane_change/episode_reward")},
    )

    change = curve_summary(logger.values("lane_change/episode_reward"))
    print(
        f"\nlane-change exploration phase: early={change['early']:.2f} "
        f"-> final={change['final']:.2f}"
    )

    if args.save:
        np.savez(args.save, **skills.state_dict())
        print(f"saved skill weights to {args.save}")


if __name__ == "__main__":
    main()
