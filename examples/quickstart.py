"""Quickstart: train HERO on cooperative lane change in a few minutes.

Runs the paper's two training stages at a small scale and prints the four
evaluation metrics (Sec. V-B). Scale everything up with ``--episodes`` /
``--skill-episodes`` (the paper uses 14,000).

Usage::

    python examples/quickstart.py [--episodes 300] [--skill-episodes 250]

Pass ``--checkpoint team.npz`` to persist the trained team as a serving
checkpoint (``python -m repro serve team.npz`` picks it up).
"""

import argparse

import numpy as np

# The package root is the stable public surface (PR 7); deep module paths
# keep working but new code should import from `repro`.
from repro import (
    HeroTeam,
    TrainingConfig,
    evaluate_hero,
    train_hero,
    train_low_level_skills,
)
from repro.envs import CooperativeLaneChangeEnv
from repro.experiments.common import bench_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=300)
    parser.add_argument("--skill-episodes", type=int, default=250)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint",
        default=None,
        help="optional path to write the trained team as a serving checkpoint",
    )
    args = parser.parse_args()

    config = TrainingConfig(seed=args.seed)
    config.scenario = bench_scenario()
    config.epsilon_start, config.epsilon_end = 0.4, 0.05
    config.epsilon_decay_episodes = max(args.episodes // 2, 1)

    print("== Stage 1 (Algorithm 2): training low-level skills with SAC ==")
    skills, skill_log = train_low_level_skills(config, episodes=args.skill_episodes)
    print(
        f"lane keeping final reward:  {skill_log.window_mean('lane_keeping/episode_reward', 20):.2f}"
    )
    print(
        f"lane change  final reward:  {skill_log.window_mean('lane_change/episode_reward', 20):.2f}"
    )

    print("\n== Stage 2 (Algorithm 1): training the cooperative strategy ==")
    env = CooperativeLaneChangeEnv(scenario=config.scenario, rewards=config.rewards)
    team = HeroTeam(
        env, np.random.default_rng(args.seed), hyper=config.hyper,
        skills=skills, batch_size=128, lr=2e-3,
    )
    logger = train_hero(
        env, team, episodes=args.episodes, config=config, updates_per_episode=4,
        checkpoint_path=args.checkpoint,
    )
    print(f"final eval reward:    {logger.latest('hero/eval_episode_reward'):.2f}")
    print(f"final eval collision: {logger.latest('hero/eval_collision_rate'):.2f}")
    if args.checkpoint:
        print(f"serving checkpoint written to {args.checkpoint}")

    print("\n== Greedy evaluation (20 episodes) ==")
    metrics = evaluate_hero(env, team, episodes=20, seed=args.seed + 1)
    for name, value in metrics.items():
        print(f"  {name:18s} {value:.4f}")


if __name__ == "__main__":
    main()
