"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs (``pip install -e .``) cannot build a wheel.
This shim keeps the legacy ``setup.py develop`` path working; metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
