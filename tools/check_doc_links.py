#!/usr/bin/env python
"""Docs link check: every relative link in the Markdown docs must resolve.

Scans ``README.md`` and ``docs/*.md`` for inline Markdown links and fails
when a relative target (file or directory) does not exist in the
repository.  External links (``http(s)://``) are intentionally not
fetched — CI must not depend on third-party uptime — and pure anchors
(``#section``) are skipped.

Usage::

    python tools/check_doc_links.py            # check the repo's docs
    python tools/check_doc_links.py FILE...    # check specific files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Inline links: [text](target). Images share the syntax via a leading "!".
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")


def iter_links(markdown: str):
    """Yield link targets, skipping fenced code blocks."""
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        yield from LINK_PATTERN.findall(line)


def check_file(path: Path) -> list[str]:
    """Return one error string per broken relative link in ``path``."""
    errors = []
    for target in iter_links(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        files = [Path(arg).resolve() for arg in argv]
    else:
        files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
    missing = [path for path in files if not path.exists()]
    if missing:
        for path in missing:
            print(f"no such file: {path}", file=sys.stderr)
        return 1

    errors = [error for path in files for error in check_file(path)]
    for error in errors:
        print(error, file=sys.stderr)
    checked = ", ".join(str(p.relative_to(REPO_ROOT)) for p in files)
    if errors:
        print(f"\nlink check FAILED ({len(errors)} broken) over: {checked}")
        return 1
    print(f"link check passed: {checked}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
