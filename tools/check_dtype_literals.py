#!/usr/bin/env python
"""Precision guard: no hard-coded ``np.float64`` in the hot kernels.

``--dtype float32`` only works end-to-end if every array in ``nn/`` and
``core/`` draws its dtype from ``repro.nn.tensor.get_default_dtype()``
(or from the parameters it operates on).  A stray ``np.float64`` literal
silently upcasts the arrays it touches and — because numpy propagates
the widest dtype through every downstream op — quietly converts the
whole pipeline back to double precision, erasing the float32 speedup
without failing a single numerical test.

This checker scans ``src/repro/nn`` and ``src/repro/core`` for
``np.float64`` tokens outside the documented exemptions below.  Comments
are ignored; add a new exemption only with a justification for why the
site must stay float64 at any compute dtype (see the existing entries
and docs/ARCHITECTURE.md (Precision)).

Usage::

    python tools/check_dtype_literals.py           # check nn/ and core/
    python tools/check_dtype_literals.py FILE...   # check specific files
"""

from __future__ import annotations

import io
import re
import sys
import tokenize
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCANNED_DIRS = ("src/repro/nn", "src/repro/core")

LITERAL_PATTERN = re.compile(r"np\s*\.\s*float64")

# (repo-relative path, substring of the offending line) -> justification.
# Matching by line content instead of line number keeps the exemptions
# stable across unrelated edits.
EXEMPTIONS: dict[tuple[str, str], str] = {
    ("src/repro/nn/tensor.py", "SUPPORTED_DTYPES"): (
        "the dtype registry itself enumerates the supported precisions"
    ),
    ("src/repro/nn/tensor.py", "_default_dtype = np.dtype(np.float64)"): (
        "the process-wide default: float64 keeps the seed bitwise-identical"
    ),
    ("src/repro/nn/tensor.py", "DEFAULT_DTYPE = np.float64"): (
        "public alias of the float64 default (back-compat constant)"
    ),
    ("src/repro/nn/functional.py", "logits = np.asarray(logits, dtype=np.float64)"): (
        "categorical sampling compares float64 RNG draws against cumulative "
        "probabilities; an integer-output path, so the upcast cannot leak"
    ),
    ("src/repro/core/update_engine.py", "self.dtype = np.dtype(np.float64)"): (
        "fallback before the member scan; overwritten from the stacked "
        "parameters whenever the family has any"
    ),
    ("src/repro/core/update_engine.py", "return np.dtype(np.float64)"): (
        "family_dtype fallback for an empty family (no parameters to read)"
    ),
    (
        "src/repro/core/update_engine.py",
        "logits64 = np.asarray(logits_all, dtype=np.float64)",
    ): (
        "the fused MAAC sampler mirrors nn.functional.sample_categorical: "
        "float64 softmax/cumsum against float64 RNG draws keeps the sampled "
        "actions bitwise-faithful to the scalar path; float32 members cast "
        "the reused log-probs/probs back down at the point of use"
    ),
    ("src/repro/core/hero.py", "np.asarray(action, dtype=np.float64)"): (
        "physics command handed to the simulator; env state is float64 "
        "at any compute dtype (see envs/vector_env.py)"
    ),
    ("src/repro/core/batched.py", "np.asarray(epsilon, dtype=np.float64)"): (
        "exploration-schedule scalar compared against float64 RNG draws; "
        "never enters network compute"
    ),
}


def code_lines(source: str) -> dict[int, str]:
    """Map line number -> line content with comments and strings blanked.

    Docstrings routinely *mention* ``np.float64`` (the tolerance contract
    documents it), so only real code tokens count; tokenizing (rather
    than splitting on ``#``) gets both cases right.
    """
    lines = source.splitlines()
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type not in (tokenize.COMMENT, tokenize.STRING):
                continue
            (start_row, start_col), (end_row, end_col) = token.start, token.end
            for row in range(start_row, end_row + 1):
                line = lines[row - 1]
                lo = start_col if row == start_row else 0
                hi = end_col if row == end_row else len(line)
                lines[row - 1] = line[:lo] + " " * (hi - lo) + line[hi:]
    except tokenize.TokenError:
        pass  # fall back to raw lines; the scan still runs
    return {number: line for number, line in enumerate(lines, start=1)}


def check_file(path: Path) -> list[str]:
    rel = path.resolve().relative_to(REPO_ROOT).as_posix()
    failures = []
    for number, line in code_lines(path.read_text()).items():
        if not LITERAL_PATTERN.search(line):
            continue
        exempt = any(
            rel == exempt_path and marker in line
            for (exempt_path, marker) in EXEMPTIONS
        )
        if not exempt:
            failures.append(
                f"{rel}:{number}: hard-coded np.float64 in a hot kernel "
                f"(use get_default_dtype() or the parameter dtype): "
                f"{line.strip()}"
            )
    return failures


def main(argv: list[str]) -> int:
    if argv:
        paths = [Path(arg) for arg in argv]
    else:
        paths = sorted(
            path
            for scan_dir in SCANNED_DIRS
            for path in (REPO_ROOT / scan_dir).rglob("*.py")
        )
    failures = []
    for path in paths:
        failures.extend(check_file(path))

    # Stale exemptions are noise that hides real regressions: prune them.
    sources = {
        path.resolve().relative_to(REPO_ROOT).as_posix(): path.read_text()
        for path in paths
    }
    if not argv:  # only meaningful over the full scan set
        for (exempt_path, marker), reason in EXEMPTIONS.items():
            source = sources.get(exempt_path)
            if source is not None and marker not in source:
                failures.append(
                    f"stale exemption for {exempt_path!r} ({marker!r}): "
                    f"site no longer present — remove it ({reason})"
                )

    if failures:
        print(f"dtype-literal check FAILED ({len(failures)} problem(s)):\n")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"dtype-literal check passed ({len(paths)} files scanned)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
