"""Fault injection for the N-actor fan-out: kill one actor mid-round.

One of two actors dies inside its collection loop — via ``os._exit`` (no
teardown, exit code 17) and via ``SIGKILL`` (exit code -9).  The learner
must surface a ``RuntimeError`` naming the dead actor process, unlink
every shared-memory segment the run created (parameter server plus one
ring per actor), and leave no orphan processes behind.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.config import ScenarioConfig, TrainingConfig
from repro.core import HeroTeam, train_hero
from repro.distributed import ParameterServer, ShmRingQueue, actor_learner
from repro.envs import CooperativeLaneChangeEnv

SCENARIO = ScenarioConfig(episode_length=5)

# The second of two actors is the victim; actor 0 keeps collecting, so
# the learner sees the death while mid-merge, not at startup.
_VICTIM = "hero-actor-1"

_SEGMENTS: list[str] = []


class _RecordingServer(ParameterServer):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        _SEGMENTS.append(self._name)


class _RecordingQueue(ShmRingQueue):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        _SEGMENTS.append(self._name)


class _ExitEnv(CooperativeLaneChangeEnv):
    """Replica that hard-exits the victim actor on its first step."""

    def step(self, actions):
        if mp.current_process().name == _VICTIM:
            os._exit(17)
        return super().step(actions)


class _SigkillEnv(CooperativeLaneChangeEnv):
    """Replica that SIGKILLs the victim actor on its first step."""

    def step(self, actions):
        if mp.current_process().name == _VICTIM:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().step(actions)


class _ExitFactory:
    """Drop-in for EnvReplicaFactory building :class:`_ExitEnv` replicas."""

    env_cls = _ExitEnv

    def __init__(self, scenario=None, rewards=None, track=None, scripted_policy=None):
        self.scenario = scenario

    def __call__(self):
        return self.env_cls(scenario=self.scenario)


class _SigkillFactory(_ExitFactory):
    env_cls = _SigkillEnv


@pytest.mark.parametrize(
    "factory_cls", [_ExitFactory, _SigkillFactory], ids=["os_exit", "sigkill"]
)
def test_killed_actor_is_named_and_run_cleans_up(monkeypatch, factory_cls):
    monkeypatch.setattr(actor_learner, "EnvReplicaFactory", factory_cls)
    monkeypatch.setattr(actor_learner, "ParameterServer", _RecordingServer)
    monkeypatch.setattr(actor_learner, "ShmRingQueue", _RecordingQueue)
    _SEGMENTS.clear()
    before = {proc.pid for proc in mp.active_children()}

    config = TrainingConfig(seed=0)
    config.scenario = SCENARIO
    env = CooperativeLaneChangeEnv(scenario=SCENARIO)
    team = HeroTeam(env, np.random.default_rng(0), batch_size=32)
    with pytest.raises(RuntimeError, match=_VICTIM):
        train_hero(
            env,
            team,
            episodes=3,
            config=config,
            num_envs=2,
            eval_every=0,
            async_actors=True,
            num_actors=2,
        )

    after = {proc.pid for proc in mp.active_children()}
    assert after <= before, "failed fan-out run leaked processes"
    assert len(_SEGMENTS) == 3  # parameter server + one ring per actor
    for name in _SEGMENTS:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
