"""Concurrency stress locks for the ActorFanIn MPSC merge.

Thread producers feed per-ring SPSC queues under seeded randomized
schedules; the merge must preserve every ring's FIFO order, serve strict
rotation in expected mode (stashing out-of-turn frames), let ActorError
jump the merge from any ring, and turn closed-and-drained rings into
QueueClosed instead of hangs.  ``REPRO_STRESS_ROUNDS`` repeats the
randomized schedules with fresh seeds.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.distributed import ActorFanIn, ActorError, QueueClosed, ShmRingQueue


def _make_rings(count, capacity=1 << 14):
    return [ShmRingQueue(capacity=capacity) for _ in range(count)]


def _release_all(rings):
    for ring in rings:
        ring.release()


def _producer(ring, frames, rng, close=False):
    for frame in frames:
        ring.put(frame, timeout=30.0)
        if rng.random() < 0.2:
            time.sleep(0.001)
    if close:
        ring.close()


def test_plain_merge_preserves_per_ring_fifo(stress_round):
    """First-available merge over randomly paced producers: all frames
    arrive, and each ring's stream stays in order."""
    rng = np.random.default_rng(10_000 + stress_round)
    counts = [int(rng.integers(5, 40)) for _ in range(3)]
    rings = _make_rings(3)
    try:
        fan_in = ActorFanIn(rings)
        threads = [
            threading.Thread(
                target=_producer,
                args=(
                    rings[k],
                    [(k, i) for i in range(counts[k])],
                    np.random.default_rng(11_000 + stress_round * 7 + k),
                ),
            )
            for k in range(3)
        ]
        for thread in threads:
            thread.start()
        received = [fan_in.get(timeout=30.0) for _ in range(sum(counts))]
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(received) == sum(counts)
        for k in range(3):
            stream = [i for ring, i in received if ring == k]
            assert stream == list(range(counts[k])), f"ring {k} reordered"
    finally:
        _release_all(rings)


def test_expected_rotation_stashes_out_of_turn_frames(stress_round):
    """Strict rotation with producers finishing in random order: the
    merged stream is exactly ring 0, 1, 2, 0, 1, 2, ... regardless of
    arrival order (out-of-turn frames wait in pending buffers)."""
    rng = np.random.default_rng(20_000 + stress_round)
    rounds = 12
    rings = _make_rings(3)
    try:
        fan_in = ActorFanIn(rings)
        order = list(range(3))
        rng.shuffle(order)
        threads = [
            threading.Thread(
                target=_producer,
                args=(
                    rings[k],
                    [(k, r) for r in range(rounds)],
                    np.random.default_rng(21_000 + stress_round * 7 + k),
                ),
            )
            for k in order
        ]
        for thread in threads:
            thread.start()
        received = [
            fan_in.get(expected=i % 3, timeout=30.0) for i in range(rounds * 3)
        ]
        for thread in threads:
            thread.join(timeout=30.0)
        assert received == [(i % 3, i // 3) for i in range(rounds * 3)]
    finally:
        _release_all(rings)


def test_actor_error_jumps_the_merge_in_expected_mode():
    """An ActorError on a non-expected ring is returned immediately even
    while the expected ring stays silent."""
    rings = _make_rings(3)
    try:
        fan_in = ActorFanIn(rings)
        rings[2].put(ActorError(message="boom", actor_id=2))
        result = fan_in.get(expected=0, timeout=5.0)
        assert isinstance(result, ActorError)
        assert result.actor_id == 2 and result.message == "boom"
    finally:
        _release_all(rings)


def test_actor_error_behind_data_frames_still_surfaces():
    """Data frames queued ahead of the error frame on the same ring are
    served first (FIFO), then the error jumps out on the next get."""
    rings = _make_rings(2)
    try:
        fan_in = ActorFanIn(rings)
        rings[1].put(("data", 0))
        rings[1].put(ActorError(message="late boom", actor_id=1))
        assert fan_in.get(timeout=5.0) == ("data", 0)
        result = fan_in.get(timeout=5.0)
        assert isinstance(result, ActorError) and result.actor_id == 1
    finally:
        _release_all(rings)


def test_expected_mode_raises_when_expected_ring_closed():
    rings = _make_rings(3)
    try:
        fan_in = ActorFanIn(rings)
        rings[1].put(("survivor", 1))
        rings[0].close()
        with pytest.raises(QueueClosed, match="actor 0"):
            fan_in.get(expected=0, timeout=5.0)
    finally:
        _release_all(rings)


def test_plain_mode_drains_pending_after_all_rings_close(stress_round):
    """Closing every ring after a burst: the merge serves every enqueued
    frame (including stashed ones) before raising QueueClosed."""
    rng = np.random.default_rng(30_000 + stress_round)
    rings = _make_rings(2)
    try:
        fan_in = ActorFanIn(rings)
        counts = [int(rng.integers(1, 10)) for _ in range(2)]
        for k in range(2):
            for i in range(counts[k]):
                rings[k].put((k, i))
            rings[k].close()
        received = [fan_in.get(timeout=5.0) for _ in range(sum(counts))]
        for k in range(2):
            assert [i for ring, i in received if ring == k] == list(range(counts[k]))
        with pytest.raises(QueueClosed, match="all actor queues"):
            fan_in.get(timeout=5.0)
    finally:
        _release_all(rings)


def test_merge_timeout_and_abort():
    rings = _make_rings(2)
    try:
        fan_in = ActorFanIn(rings)
        with pytest.raises(TimeoutError):
            fan_in.get(timeout=0.1)
        with pytest.raises(RuntimeError, match="actor died"):
            fan_in.get(abort=lambda: "actor died", timeout=5.0)
        with pytest.raises(ValueError, match="expected must be in"):
            fan_in.get(expected=2)
    finally:
        _release_all(rings)


def test_single_ring_fast_path_matches_multi_ring_semantics():
    """The single-queue fast path (PR 6 topology) keeps the same close
    and error semantics as the scanning merge."""
    rings = _make_rings(1)
    try:
        fan_in = ActorFanIn(rings)
        rings[0].put("frame")
        assert fan_in.get(timeout=5.0) == "frame"
        rings[0].put(ActorError(message="solo boom", actor_id=0))
        result = fan_in.get(timeout=5.0)
        assert isinstance(result, ActorError)
        rings[0].close()
        with pytest.raises(QueueClosed):
            fan_in.get(timeout=5.0)
        # Once exhausted, later gets keep raising instead of blocking.
        with pytest.raises(QueueClosed):
            fan_in.get(timeout=5.0)
    finally:
        _release_all(rings)
