"""Seed-universe regression locks for the N-actor fan-out.

Any fan-out width must consume the *same* episode seed universe: actor
``k`` of ``N`` owns episodes ``k, k+N, k+2N, ...`` and every episode's
reset seed is a pure function of ``(seed, episode)``
(:func:`~repro.utils.seeding.episode_reset_seeds` spawns by child index),
so partitioning commutes with seeding.  These tests lock the partition
algebra, the prefix stability that padding the universe relies on, and —
end to end — that an IDQN staleness run at ``num_actors`` 1, 2 and 3
logs every episode of the same universe exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_baseline, train_marl_vectorized
from repro.config import ScenarioConfig
from repro.distributed.actor_learner import _idqn_episode_plan
from repro.envs import make_baseline_vector_env
from repro.utils.seeding import episode_partition, episode_reset_seeds

SCENARIO = ScenarioConfig(episode_length=5)


def test_partition_is_exact_for_random_universes(stress_round):
    """Disjoint slices whose sorted union is arange(episodes), any N."""
    rng = np.random.default_rng(40_000 + stress_round)
    for _ in range(25):
        episodes = int(rng.integers(0, 60))
        num_actors = int(rng.integers(1, 8))
        slices = [
            episode_partition(episodes, num_actors, k) for k in range(num_actors)
        ]
        merged = np.concatenate(slices) if slices else np.array([], dtype=np.int64)
        np.testing.assert_array_equal(np.sort(merged), np.arange(episodes))
        for k, mine in enumerate(slices):
            assert (np.diff(mine) > 0).all(), "per-actor slice must be sorted"
            if mine.size:
                assert (mine % num_actors == k).all()
    np.testing.assert_array_equal(episode_partition(13, 1, 0), np.arange(13))


def test_partition_rejects_bad_arguments():
    with pytest.raises(ValueError, match="episodes"):
        episode_partition(-1, 2, 0)
    with pytest.raises(ValueError, match="num_actors"):
        episode_partition(5, 0, 0)
    with pytest.raises(ValueError, match="actor"):
        episode_partition(5, 2, 2)


def test_reset_seed_prefix_stable_across_universe_sizes(stress_round):
    """Growing the universe (padding for more actors) never changes the
    seeds of episodes already in it — seed ``e`` depends only on
    ``(seed, e)``, not on how many episodes were requested."""
    rng = np.random.default_rng(50_000 + stress_round)
    for _ in range(10):
        seed = int(rng.integers(0, 1 << 31))
        small = int(rng.integers(1, 30))
        large = small + int(rng.integers(0, 30))
        seeds_small = episode_reset_seeds(seed, small)
        seeds_large = episode_reset_seeds(seed, large)
        np.testing.assert_array_equal(seeds_small, seeds_large[:small])
        # Pure function: recomputing reproduces bit-identically.
        np.testing.assert_array_equal(seeds_large, episode_reset_seeds(seed, large))


def test_any_fanout_consumes_the_same_budget_seed_set(stress_round):
    """The (episode, reset seed) pairs inside the episode budget are the
    same for every fan-out width, each consumed by exactly one actor."""
    rng = np.random.default_rng(60_000 + stress_round)
    for _ in range(10):
        episodes = int(rng.integers(1, 40))
        n = int(rng.integers(1, 5))
        seed = int(rng.integers(0, 1 << 31))
        reference = None
        for num_actors in (1, 2, 3):
            consumed = {}
            for actor in range(num_actors):
                universe, mine = _idqn_episode_plan(episodes, n, num_actors, actor)
                assert universe >= episodes and universe >= n * num_actors
                seeds = episode_reset_seeds(seed, universe)
                for episode in mine[mine < episodes]:
                    assert episode not in consumed, "episode consumed twice"
                    consumed[int(episode)] = int(seeds[episode])
            if reference is None:
                reference = consumed
            else:
                assert consumed == reference, f"num_actors={num_actors} diverged"


@pytest.mark.parametrize("num_actors", [1, 2, 3])
def test_idqn_staleness_run_logs_each_episode_once(num_actors):
    """End to end: partitioned collection at any width walks the same
    episode universe — every budget episode logged exactly once, in
    order, with nothing dropped or duplicated past the budget."""
    vec_env = make_baseline_vector_env(2, scenario=SCENARIO)
    algo = make_baseline("idqn", vec_env, seed=3, batch_size=16, buffer_capacity=500)
    try:
        logger = train_marl_vectorized(
            vec_env,
            algo,
            episodes=4,
            seed=5,
            eval_every=0,
            async_actors=True,
            max_staleness=2,
            num_actors=num_actors,
        )
    finally:
        vec_env.close()
    np.testing.assert_array_equal(logger.steps("idqn/episode_reward"), np.arange(4))
