"""Stress-lane configuration: repetition control for randomized tests.

Tests that accept the ``stress_round`` fixture are parametrized over
``REPRO_STRESS_ROUNDS`` repetitions (default 1, so the regular tier-1 run
stays fast; the CI stress job sets 20).  Each repetition receives its
round index, which the tests fold into their RNG seeds — so every round
exercises a different randomized schedule while any failure reproduces
from its printed parameter id.
"""

from __future__ import annotations

import os

ROUNDS = int(os.environ.get("REPRO_STRESS_ROUNDS", "1"))


def pytest_generate_tests(metafunc):
    if "stress_round" in metafunc.fixturenames:
        metafunc.parametrize("stress_round", range(ROUNDS))
