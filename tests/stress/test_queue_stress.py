"""Concurrency stress locks for the shared-memory SPSC ring.

Seeded randomized producer/consumer schedules (thread-based, so the
whole interleaving runs in-process and stays fast) covering the
properties the async stack depends on: FIFO integrity across wraparound,
bounded occupancy under backpressure, close-during-drain delivery, abort
propagation, and the non-blocking ``poll`` used by the fan-in merge.
``REPRO_STRESS_ROUNDS`` repeats every randomized schedule with fresh
seeds (the CI stress lane runs 20 rounds).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import QueueClosed, ShmRingQueue


def _drain_all(queue, count, out, **kwargs):
    for _ in range(count):
        out.append(queue.get(timeout=30.0, **kwargs))


def test_fifo_random_payloads_across_wraparound(stress_round):
    """Random frame sizes through a tiny ring: every frame arrives intact
    and in order, across many wrap points."""
    rng = np.random.default_rng(1_000 + stress_round)
    queue = ShmRingQueue(capacity=4096)
    try:
        frames = [
            bytes(rng.integers(0, 256, size=int(rng.integers(0, 1200)), dtype=np.uint8))
            for _ in range(200)
        ]
        received: list = []
        consumer = threading.Thread(target=_drain_all, args=(queue, len(frames), received))
        consumer.start()
        for frame in frames:
            queue.put(frame, timeout=30.0)
            if rng.random() < 0.1:
                time.sleep(0.001)
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        assert received == frames
    finally:
        queue.release()


def test_random_interleaving_preserves_structured_payloads(stress_round):
    """Randomly timed producer vs consumer with structured payloads
    (tuples carrying arrays) — the pickle round trip never tears."""
    rng = np.random.default_rng(2_000 + stress_round)
    queue = ShmRingQueue(capacity=1 << 16)
    try:
        payloads = [
            ("frame", i, rng.standard_normal(int(rng.integers(1, 64))))
            for i in range(100)
        ]
        received: list = []

        def consume():
            local_rng = np.random.default_rng(3_000 + stress_round)
            for _ in range(len(payloads)):
                received.append(queue.get(timeout=30.0))
                if local_rng.random() < 0.2:
                    time.sleep(0.002)

        consumer = threading.Thread(target=consume)
        consumer.start()
        for payload in payloads:
            queue.put(payload, timeout=30.0)
            if rng.random() < 0.2:
                time.sleep(0.001)
        consumer.join(timeout=30.0)
        assert not consumer.is_alive()
        assert len(received) == len(payloads)
        for sent, got in zip(payloads, received):
            assert got[0] == sent[0] and got[1] == sent[1]
            np.testing.assert_array_equal(got[2], sent[2])
    finally:
        queue.release()


def test_backpressure_bounds_occupancy_and_blocks_producer(stress_round):
    """A producer that outruns the consumer blocks; ring occupancy never
    exceeds capacity and a stalled consumer turns put into TimeoutError."""
    rng = np.random.default_rng(4_000 + stress_round)
    queue = ShmRingQueue(capacity=2048)
    try:
        frame = bytes(rng.integers(0, 256, size=600, dtype=np.uint8))
        # Fill until full: with ~600B frames a 2048B ring holds at most 3.
        stored = 0
        with pytest.raises(TimeoutError):
            for _ in range(10):
                queue.put(frame, timeout=0.2)
                stored += 1
        assert 1 <= stored <= 3
        assert queue.qsize_bytes() <= queue.capacity
        # Draining one frame unblocks exactly one more put.
        assert queue.get(timeout=5.0) == frame
        queue.put(frame, timeout=5.0)
        with pytest.raises(TimeoutError):
            queue.put(frame, timeout=0.2)
    finally:
        queue.release()


def test_close_during_drain_delivers_then_raises(stress_round):
    """Frames enqueued before close() are still delivered, in order; the
    next get/poll raises QueueClosed, and put is rejected immediately."""
    rng = np.random.default_rng(5_000 + stress_round)
    queue = ShmRingQueue(capacity=1 << 14)
    try:
        frames = [("pre-close", int(i), int(rng.integers(0, 1 << 30))) for i in range(7)]
        for frame in frames:
            queue.put(frame)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(("post-close", -1, -1))
        received = [queue.get(timeout=5.0) for _ in range(len(frames))]
        assert received == frames
        with pytest.raises(QueueClosed):
            queue.get(timeout=5.0)
        with pytest.raises(QueueClosed):
            queue.poll()
    finally:
        queue.release()


def test_close_wakes_blocked_producer():
    """close() from the consumer side wakes a producer stuck on a full
    ring instead of leaving it to time out."""
    queue = ShmRingQueue(capacity=1024)
    try:
        queue.put(bytes(700))
        result: dict = {}

        def blocked_put():
            try:
                queue.put(bytes(700), timeout=30.0)
            except QueueClosed:
                result["outcome"] = "closed"
            except Exception as exc:  # pragma: no cover - diagnostic
                result["outcome"] = repr(exc)

        producer = threading.Thread(target=blocked_put)
        producer.start()
        time.sleep(0.1)
        assert producer.is_alive(), "producer should be blocked on the full ring"
        queue.close()
        producer.join(timeout=10.0)
        assert not producer.is_alive()
        assert result["outcome"] == "closed"
    finally:
        queue.release()


def test_abort_callback_raises_from_both_ends():
    """The abort poll surfaces a dead peer as RuntimeError on a blocked
    get (empty ring) and a blocked put (full ring)."""
    queue = ShmRingQueue(capacity=1024)
    try:
        with pytest.raises(RuntimeError, match="peer gone"):
            queue.get(abort=lambda: "peer gone")
        queue.put(bytes(700))
        with pytest.raises(RuntimeError, match="peer gone"):
            queue.put(bytes(700), abort=lambda: "peer gone")
    finally:
        queue.release()


def test_oversize_frame_rejected_outright():
    queue = ShmRingQueue(capacity=256)
    try:
        with pytest.raises(ValueError, match="exceeds queue capacity"):
            queue.put(bytes(512))
        # The ring is untouched and still usable.
        queue.put("small")
        assert queue.get(timeout=5.0) == "small"
    finally:
        queue.release()


def test_poll_is_nonblocking_and_equivalent_to_get(stress_round):
    """poll() returns (False, None) on empty, pops FIFO otherwise, and
    agrees with get() when mixed in the same drain."""
    rng = np.random.default_rng(6_000 + stress_round)
    queue = ShmRingQueue(capacity=1 << 14)
    try:
        assert queue.poll() == (False, None)
        frames = [int(x) for x in rng.integers(0, 1 << 30, size=20)]
        for frame in frames:
            queue.put(frame)
        received = []
        while len(received) < len(frames):
            if rng.random() < 0.5:
                ok, item = queue.poll()
                assert ok
                received.append(item)
            else:
                received.append(queue.get(timeout=5.0))
        assert received == frames
        assert queue.poll() == (False, None)
    finally:
        queue.release()


@settings(deadline=None, max_examples=25)
@given(
    frames=st.lists(
        st.binary(min_size=0, max_size=200), min_size=1, max_size=40
    ),
    batch=st.integers(min_value=1, max_value=5),
)
def test_property_fifo_integrity_under_batched_schedules(frames, batch):
    """Property lock: for any frame list and put-batch granularity, a
    put/get schedule that never exceeds capacity is lossless and ordered."""
    queue = ShmRingQueue(capacity=4096)
    try:
        received = []
        index = 0
        while index < len(frames):
            chunk = frames[index : index + batch]
            for frame in chunk:
                queue.put(frame, timeout=5.0)
            for _ in chunk:
                received.append(queue.get(timeout=5.0))
            index += batch
        assert received == frames
    finally:
        queue.release()
