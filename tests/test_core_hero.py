"""Integration tests for the composed HERO agent/team and trainers."""

import numpy as np
import pytest

from repro.config import RewardConfig, ScenarioConfig, TrainingConfig
from repro.core import (
    HeroTeam,
    LANE_CHANGE,
    train_hero,
    train_low_level_skills,
)
from repro.core.trainer import evaluate_hero
from repro.distributed import DistributedObservationService
from repro.envs import CooperativeLaneChangeEnv, RealWorldTestbed


def small_scenario(**overrides):
    defaults = dict(episode_length=8)
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


def make_team(env, seed=0, **kwargs):
    defaults = dict(batch_size=16)
    defaults.update(kwargs)
    return HeroTeam(env, np.random.default_rng(seed), **defaults)


class TestHeroTeam:
    def test_act_returns_action_per_agent(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env)
        obs = env.reset(seed=0)
        team.start_episode()
        actions = team.act(obs)
        assert set(actions) == set(env.agents)
        for action in actions.values():
            assert action.shape == (2,)

    def test_actions_within_env_bounds(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env)
        obs = env.reset(seed=0)
        team.start_episode()
        for _ in range(5):
            actions = team.act(obs, epsilon=1.0)
            for agent, action in actions.items():
                assert env.action_spaces[agent].contains(
                    np.clip(action, env.action_spaces[agent].low, env.action_spaces[agent].high)
                )
            obs, _, dones, _ = env.step(actions)
            if dones["__all__"]:
                break

    def test_option_transitions_stored(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env)
        obs = env.reset(seed=0)
        team.start_episode()
        done = False
        while not done:
            actions = team.act(obs, epsilon=0.5)
            obs, rewards, dones, _ = env.step(actions)
            team.after_step(obs, rewards, dones)
            done = dones["__all__"]
        stored = sum(
            len(agent.high_level.buffer) for agent in team.agents.values()
        )
        assert stored > 0

    def test_opponent_history_recorded(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env)
        obs = env.reset(seed=0)
        team.start_episode()
        actions = team.act(obs)
        obs, rewards, dones, _ = env.step(actions)
        team.after_step(obs, rewards, dones)
        for agent in team.agents.values():
            assert len(agent.high_level.opponent_model.history) == 1

    def test_lane_change_attempts_counted(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env)
        obs = env.reset(seed=0)
        team.start_episode()
        # Force every agent onto the lane-change option.
        for agent in team.agents.values():
            agent.high_level.actor.trunk.net[-2].bias.data[:] = 0.0
            agent.high_level.actor.trunk.net[-2].bias.data[LANE_CHANGE] = 50.0
        team.act(obs, epsilon=0.0)
        attempts, _ = team.lane_change_stats()
        assert attempts == len(env.agents)

    def test_update_after_data_returns_losses(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env, batch_size=8)
        for episode in range(4):
            obs = env.reset(seed=episode)
            team.start_episode()
            done = False
            while not done:
                actions = team.act(obs, epsilon=0.5)
                obs, rewards, dones, _ = env.step(actions)
                team.after_step(obs, rewards, dones)
                done = dones["__all__"]
        losses = team.update()
        assert any("critic_loss" in key for key in losses)

    def test_keep_lane_coasts_with_centering(self):
        env = CooperativeLaneChangeEnv(scenario=small_scenario())
        team = make_team(env)
        obs = env.reset(seed=0)
        team.start_episode()
        agent = team.agents[env.agents[0]]
        # Force keep-lane.
        agent.high_level.actor.trunk.net[-2].bias.data[:] = 0.0
        agent.high_level.actor.trunk.net[-2].bias.data[0] = 50.0
        action = agent.act(
            obs[env.agents[0]],
            env.vehicle(env.agents[0]),
            np.array([0, 0]),
            explore=False,
        )
        assert action[0] == pytest.approx(env.scenario.initial_speed)


class TestTrainHero:
    def test_training_runs_and_logs(self):
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        team = make_team(env)
        logger = train_hero(env, team, episodes=3, config=config)
        assert len(logger.values("hero/episode_reward")) == 3
        assert "hero/collision_rate" in logger.names()

    def test_two_stage_training(self):
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        skills, logger = train_low_level_skills(config, episodes=2)
        assert "lane_keeping/episode_reward" in logger.names()
        assert "lane_change/episode_reward" in logger.names()

    def test_evaluate_hero_metrics(self):
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        team = make_team(env)
        metrics = evaluate_hero(env, team, episodes=2)
        assert set(metrics) == {
            "episode_reward",
            "collision_rate",
            "success_rate",
            "mean_speed",
        }

    def test_evaluate_on_testbed_wrapper(self):
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        team = make_team(env)
        testbed = RealWorldTestbed(env, seed=0)
        metrics = evaluate_hero(testbed, team, episodes=2)
        assert 0.0 <= metrics["collision_rate"] <= 1.0


class TestDistributedHero:
    def test_training_with_observation_service(self):
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        service = DistributedObservationService(
            env.agents, latency_steps=1, drop_probability=0.1, seed=0
        )
        team = make_team(env, observation_service=service)
        logger = train_hero(env, team, episodes=3, config=config)
        assert len(logger.values("hero/episode_reward")) == 3
        assert service.bus.stats()["sent"] > 0

    def test_observed_options_come_from_bus(self):
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        service = DistributedObservationService(env.agents, latency_steps=0, seed=0)
        team = make_team(env, observation_service=service)
        obs = env.reset(seed=0)
        team.start_episode()
        # Before any exchange: defaults (keep_lane).
        np.testing.assert_array_equal(
            team._options_of_others(env.agents[0]), [0, 0]
        )
        team.act(obs)
        team.exchange_observations(obs, timestamp=0)
        observed = team._options_of_others(env.agents[0])
        expected = np.array(
            [
                team.agents[a].current_option
                for a in env.agents
                if a != env.agents[0]
            ]
        )
        np.testing.assert_array_equal(observed, expected)


class TestSoloSanity:
    def test_single_agent_hero_learns_to_escape(self):
        """At single-agent scale HERO must learn the merge quickly — this is
        the end-to-end learning sanity check (see EXPERIMENTS.md)."""
        from repro.experiments.common import train_hero_method

        scenario = ScenarioConfig(num_learning_vehicles=1, episode_length=20)
        trained = train_hero_method(
            scenario,
            RewardConfig(),
            episodes=120,
            skill_episodes=100,
            seed=0,
            batch_size=64,
            updates_per_episode=2,
            lr=3e-3,
        )
        rewards = trained.logger.values("hero/episode_reward")
        collisions = trained.logger.values("hero/collision_rate")
        assert rewards[-30:].mean() > rewards[:30].mean()
        assert collisions[-30:].mean() < 0.5
