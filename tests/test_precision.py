"""Tolerance contract for the ``--dtype float32`` compute path (ISSUE 9).

The guarantees under test, as documented in docs/ARCHITECTURE.md
(Precision):

* **float64 stays the seed** — the default dtype is float64 and running
  under an explicit ``default_dtype("float64")`` context is bitwise
  identical to running with no context at all;
* **float32 is tolerance-equivalent** — optimisers, the stacked-family
  VJP and few-episode end-to-end training (HERO plain/fused/async and
  IDQN) reproduce the float64 numbers within the documented bounds;
* **no silent upcasts** — float32 stays float32 through the optimiser
  state, the fused VJP and the replay-buffer boundary (one cast at
  ``push``, none at ``sample``);
* **footprints halve** — parameter-server segments, the sharded-env
  shared-memory layout and checkpoint payloads shrink ~2x at float32.

Checkpoint format coverage rides along: format 2 records the dtype and
round-trips both precisions bitwise; format 1 archives (which predate
the field) load as float64.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RewardConfig, ScenarioConfig
from repro.core.update_engine import StackedMLP
from repro.distributed.parameter_server import ParameterServer
from repro.envs.sharded_env import _build_layout
from repro.experiments.common import train_baseline_method, train_hero_method
from repro.nn import MLP, SGD, Adam, RMSprop, Parameter
from repro.nn.tensor import default_dtype, get_default_dtype
from repro.serving import load_checkpoint, load_policy, save_checkpoint
from repro.training.replay import (
    ObservationHistoryBuffer,
    OptionReplayBuffer,
    OptionTransition,
    ReplayBuffer,
)

RNG = np.random.default_rng

# The contract's end-to-end bound: per-episode rewards of identically
# seeded few-episode runs.  Discrete actions and float64 env physics keep
# the trajectories in lockstep at this scale, so the divergence is pure
# float32 rounding (observed ~1e-7); 1e-3 leaves noise margin without
# letting a genuinely broken kernel through.
EPISODE_REWARD_ATOL = 1e-3

SCENARIO = ScenarioConfig(num_learning_vehicles=2, episode_length=15)


def _train_hero(dtype=None, **kwargs):
    ctx = default_dtype(dtype) if dtype else _null_context()
    with ctx:
        trained = train_hero_method(
            SCENARIO,
            RewardConfig(),
            episodes=3,
            skill_episodes=2,
            seed=0,
            batch_size=32,
            updates_per_episode=1,
            **kwargs,
        )
    return trained.logger


def _train_idqn(dtype=None):
    ctx = default_dtype(dtype) if dtype else _null_context()
    with ctx:
        trained = train_baseline_method(
            "idqn", SCENARIO, RewardConfig(), episodes=3, seed=0
        )
    return trained.logger


def _train_fused_baseline(name, dtype=None):
    """A fused-engine baseline run; returns the full TrainedMethod."""
    ctx = default_dtype(dtype) if dtype else _null_context()
    with ctx:
        return train_baseline_method(
            name,
            SCENARIO,
            RewardConfig(),
            episodes=3,
            seed=0,
            fused_updates=True,
            batch_size=16,
        )


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _assert_logs_close(log64, log32, atol):
    assert log64.names() == log32.names()
    for metric in log64.names():
        np.testing.assert_allclose(
            log64.values(metric),
            log32.values(metric),
            atol=atol,
            rtol=0,
            err_msg=metric,
        )


def _assert_logs_equal(log_a, log_b):
    assert log_a.names() == log_b.names()
    for metric in log_a.names():
        np.testing.assert_array_equal(
            log_a.values(metric), log_b.values(metric), err_msg=metric
        )


# ---------------------------------------------------------------------------
# Optimisers: float32 tracks float64 and never upcasts its state
# ---------------------------------------------------------------------------


OPTIMIZERS = {
    "sgd": lambda params: SGD(params, lr=0.05, momentum=0.9, weight_decay=1e-4),
    "adam": lambda params: Adam(params, lr=0.01),
    "rmsprop": lambda params: RMSprop(params, lr=0.01),
}


def _run_optimizer(name: str, dtype: str, steps: int = 50):
    master = [RNG(7 + k).standard_normal((6, 4)) for k in range(3)]
    grads = [RNG(70 + k).standard_normal((steps, 6, 4)) for k in range(3)]
    with default_dtype(dtype):
        params = [Parameter(m.astype(dtype)) for m in master]
        opt = OPTIMIZERS[name](params)
        for t in range(steps):
            for param, grad in zip(params, grads):
                param.grad = grad[t].astype(dtype)
            opt.step()
            opt.zero_grad()
    return params


class TestOptimizerTolerance:
    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_float32_tracks_float64(self, name):
        p64 = _run_optimizer(name, "float64")
        p32 = _run_optimizer(name, "float32")
        for a, b in zip(p64, p32):
            np.testing.assert_allclose(a.data, b.data, rtol=1e-3, atol=1e-5)

    @pytest.mark.parametrize("name", sorted(OPTIMIZERS))
    def test_float32_state_never_upcasts(self, name):
        for param in _run_optimizer(name, "float32", steps=5):
            assert param.data.dtype == np.float32


# ---------------------------------------------------------------------------
# Stacked-family VJP: float32 forward/backward within tolerance, no upcast
# ---------------------------------------------------------------------------


def _family_pair():
    """The same 3-member MLP family materialised at both precisions."""
    members64 = [MLP(5, [8, 8], 4, RNG(10 + k)) for k in range(3)]
    with default_dtype("float32"):
        members32 = [MLP(5, [8, 8], 4, RNG(10 + k)) for k in range(3)]
    for m64, m32 in zip(members64, members32):
        m32.load_state_dict(
            {k: v.astype(np.float32) for k, v in m64.state_dict().items()}
        )
    # Families (like Parameters) adopt the ambient dtype at construction,
    # so the float32 one must be built inside the context too.
    with default_dtype("float32"):
        family32 = StackedMLP(members32)
    return StackedMLP(members64), family32


class TestStackedVJPTolerance:
    def test_forward_and_backward_track_float64(self):
        family64, family32 = _family_pair()
        x = RNG(4).standard_normal((3, 12, 5))
        grad_out = RNG(6).standard_normal((3, 12, 4))

        out64, cache64 = family64.forward_cached(x)
        family64.zero_grad()
        family64.backward_cached(cache64, grad_out)

        out32, cache32 = family32.forward_cached(x.astype(np.float32))
        family32.zero_grad()
        family32.backward_cached(cache32, grad_out.astype(np.float32))

        np.testing.assert_allclose(out64, out32, rtol=1e-4, atol=1e-6)
        for p64, p32 in zip(family64.params(), family32.params()):
            np.testing.assert_allclose(p64.grad, p32.grad, rtol=1e-3, atol=1e-5)

    def test_float32_vjp_never_upcasts(self):
        _, family32 = _family_pair()
        assert family32.dtype == np.float32
        x32 = RNG(4).standard_normal((3, 12, 5)).astype(np.float32)
        out32, cache32 = family32.forward_cached(x32)
        assert out32.dtype == np.float32
        family32.zero_grad()
        family32.backward_cached(cache32, np.ones_like(out32))
        for param in family32.params():
            assert param.grad.dtype == np.float32


# ---------------------------------------------------------------------------
# End-to-end few-episode equivalence (HERO plain / fused / async, IDQN)
# ---------------------------------------------------------------------------


class TestEndToEndEquivalence:
    def test_hero_plain(self):
        _assert_logs_close(
            _train_hero("float64"), _train_hero("float32"), EPISODE_REWARD_ATOL
        )

    def test_hero_fused(self):
        _assert_logs_close(
            _train_hero("float64", fused_updates=True),
            _train_hero("float32", fused_updates=True),
            EPISODE_REWARD_ATOL,
        )

    def test_hero_async(self):
        kwargs = dict(num_envs=2, async_actors=True, num_actors=2)
        _assert_logs_close(
            _train_hero("float64", **kwargs),
            _train_hero("float32", **kwargs),
            EPISODE_REWARD_ATOL,
        )

    def test_idqn(self):
        _assert_logs_close(
            _train_idqn("float64"), _train_idqn("float32"), EPISODE_REWARD_ATOL
        )

    @pytest.mark.parametrize("name", ["maddpg", "maac"])
    def test_cross_family_fused(self, name):
        """--fused-updates --dtype float32 composes for the cross-family
        VJP engines (MADDPG/MAAC) under the same end-to-end bound."""
        _assert_logs_close(
            _train_fused_baseline(name, "float64").logger,
            _train_fused_baseline(name, "float32").logger,
            EPISODE_REWARD_ATOL,
        )

    @pytest.mark.parametrize("name", ["maddpg", "maac"])
    def test_cross_family_fused_float32_never_upcasts(self, name):
        trained = _train_fused_baseline(name, "float32")
        for key, value in trained.controller.state_dict().items():
            assert value.dtype == np.float32, key


# ---------------------------------------------------------------------------
# The float64 default is the seed, bit for bit
# ---------------------------------------------------------------------------


class TestFloat64SeedLock:
    def test_default_dtype_is_float64(self):
        assert np.dtype(get_default_dtype()) == np.float64

    def test_hero_default_matches_explicit_float64_bitwise(self):
        _assert_logs_equal(_train_hero(None), _train_hero("float64"))

    def test_idqn_default_matches_explicit_float64_bitwise(self):
        _assert_logs_equal(_train_idqn(None), _train_idqn("float64"))

    @pytest.mark.parametrize("name", ["maddpg", "maac"])
    def test_cross_family_fused_default_matches_float64_bitwise(self, name):
        _assert_logs_equal(
            _train_fused_baseline(name, None).logger,
            _train_fused_baseline(name, "float64").logger,
        )


# ---------------------------------------------------------------------------
# Replay boundary: one cast at push, none at sample
# ---------------------------------------------------------------------------


class TestReplayDtypeBoundary:
    def test_option_buffer_follows_compute_dtype(self):
        with default_dtype("float32"):
            buffer = OptionReplayBuffer(capacity=8, obs_dim=3, num_opponents=2)
        assert buffer.obs.dtype == np.float32
        # float64 producers (env physics) cast once at the push boundary.
        buffer.push(
            OptionTransition(
                obs=np.ones(3, dtype=np.float64),
                option=1,
                other_options=np.zeros(2, dtype=np.int64),
                reward=np.float64(0.5),
                next_obs=np.ones(3, dtype=np.float64),
                done=False,
                steps=2,
            )
        )
        batch = buffer.sample(1, RNG(0))
        for key in ("obs", "rewards", "next_obs", "dones"):
            assert batch[key].dtype == np.float32, key
        assert batch["options"].dtype == np.int64

    def test_history_buffer_follows_compute_dtype(self):
        with default_dtype("float32"):
            buffer = ObservationHistoryBuffer(capacity=8, obs_dim=3, num_opponents=2)
        assert buffer.obs.dtype == np.float32

    def test_base_buffer_sample_keeps_storage_dtype(self):
        buffer = ReplayBuffer(capacity=8, obs_dim=3, action_dim=2)
        buffer.push(
            np.ones(3, dtype=np.float64),
            np.ones(2, dtype=np.float64),
            0.5,
            np.ones(3, dtype=np.float64),
            False,
        )
        batch = buffer.sample(1, RNG(0))
        for key in ("obs", "actions", "rewards", "next_obs", "dones"):
            assert batch[key].dtype == np.float32, key


# ---------------------------------------------------------------------------
# Checkpoint formats: v2 records dtype, v1 loads as float64
# ---------------------------------------------------------------------------


def _fresh_team(dtype: str):
    from repro import HeroTeam
    from repro.envs import CooperativeLaneChangeEnv

    with default_dtype(dtype):
        env = CooperativeLaneChangeEnv(scenario=SCENARIO)
        return HeroTeam(env, RNG(3))


class TestCheckpointDtype:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_v2_roundtrip_preserves_dtype_bitwise(self, dtype, tmp_path):
        team = _fresh_team(dtype)
        path = tmp_path / "team.npz"
        with default_dtype(dtype):
            save_checkpoint(path, team, scenario=SCENARIO)
        ckpt = load_checkpoint(path)
        assert ckpt.meta["dtype"] == dtype
        assert ckpt.dtype == np.dtype(dtype)
        loaded = load_policy(path)
        for key, value in loaded.controller.state_dict().items():
            expected = team.state_dict()[key]
            assert value.dtype == expected.dtype, key
            np.testing.assert_array_equal(value, expected, err_msg=key)

    def test_v1_archive_loads_as_float64(self, tmp_path):
        team = _fresh_team("float64")
        path = tmp_path / "team.npz"
        save_checkpoint(path, team, scenario=SCENARIO)
        # Rewrite as a format-1 archive: version 1 predates the dtype
        # field, so strip it from the metadata too.
        from repro.distributed.protocol import decode_json_meta, encode_json_meta

        with np.load(path) as archive:
            entries = {name: archive[name] for name in archive.files}
        meta = decode_json_meta(entries["meta"])
        del meta["dtype"]
        entries["meta"] = encode_json_meta(meta)
        entries["format_version"] = np.int64(1)
        np.savez(path, **entries)

        ckpt = load_checkpoint(path)
        assert ckpt.dtype == np.float64
        assert ckpt.flat_params.dtype == np.float64
        loaded = load_policy(path)
        for value in loaded.controller.state_dict().values():
            assert value.dtype == np.float64

    def test_checkpoint_info_prints_dtype(self, tmp_path, capsys):
        from repro.cli import main

        team = _fresh_team("float32")
        path = tmp_path / "team.npz"
        with default_dtype("float32"):
            save_checkpoint(path, team, scenario=SCENARIO)
        assert main(["checkpoint", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "float32 values" in out


# ---------------------------------------------------------------------------
# Footprints halve at float32
# ---------------------------------------------------------------------------


class TestFootprintHalving:
    def test_parameter_server_segment_halves(self):
        def segment_size(dtype):
            server = ParameterServer({"team": 100_000}, num_rngs=2, dtype=dtype)
            try:
                return server._shm.size
            finally:
                server.release()

        size64 = segment_size(np.float64)
        size32 = segment_size(np.float32)
        # Double-buffered param block dominates; header/RNG rows are flat.
        assert size32 < 0.6 * size64

    def test_sharded_layout_halves(self):
        def total_bytes(name):
            _, total = _build_layout(
                num_envs=16,
                num_agents=4,
                num_workers=2,
                beams=32,
                lanes=4,
                feats=8,
                float_dtype=name,
            )
            return total

        # Observation payloads dominate at this shape; the float64
        # physics mirrors and the control plane keep the ratio above a
        # strict 0.5.
        assert total_bytes("float32") < 0.65 * total_bytes("float64")

    def test_checkpoint_payload_halves(self, tmp_path):
        team64 = _fresh_team("float64")
        team32 = _fresh_team("float32")
        path64 = tmp_path / "t64.npz"
        path32 = tmp_path / "t32.npz"
        save_checkpoint(path64, team64, scenario=SCENARIO)
        with default_dtype("float32"):
            save_checkpoint(path32, team32, scenario=SCENARIO)
        flat64 = load_checkpoint(path64).flat_params
        flat32 = load_checkpoint(path32).flat_params
        assert flat64.size == flat32.size
        assert flat32.nbytes * 2 == flat64.nbytes
