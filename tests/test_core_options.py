"""Tests for the options framework and option executor."""

import pytest

from repro.core.options import (
    ACCELERATE,
    KEEP_LANE,
    LANE_CHANGE,
    OPTION_NAMES,
    SLOW_DOWN,
    OptionExecutor,
    OptionSet,
)
from repro.envs import StraightTrack, Vehicle


@pytest.fixture
def track():
    return StraightTrack(20.0, num_lanes=2, lane_width=0.5)


@pytest.fixture
def vehicle(track):
    v = Vehicle(0, track)
    v.reset(s=5.0, lane_id=0, speed=0.08)
    return v


class TestOptionSet:
    def test_four_options(self):
        options = OptionSet()
        assert len(options) == 4
        assert options.names() == OPTION_NAMES

    def test_indices_match_constants(self):
        options = OptionSet()
        assert options[KEEP_LANE].name == "keep_lane"
        assert options[SLOW_DOWN].name == "slow_down"
        assert options[ACCELERATE].name == "accelerate"
        assert options[LANE_CHANGE].name == "lane_change"

    def test_bounds_match_paper(self):
        options = OptionSet()
        slow = options[SLOW_DOWN].bounds
        assert (slow.linear_low, slow.linear_high) == (0.04, 0.08)
        acc = options[ACCELERATE].bounds
        assert (acc.linear_low, acc.linear_high) == (0.08, 0.14)
        change = options[LANE_CHANGE].bounds
        assert (change.linear_low, change.linear_high) == (0.10, 0.20)
        assert (change.angular_low, change.angular_high) == (0.12, 0.25)

    def test_keep_lane_has_no_bounds(self):
        assert OptionSet()[KEEP_LANE].bounds is None

    def test_availability_mask_all_on_two_lanes(self, vehicle):
        mask = OptionSet().available_mask(vehicle)
        assert mask.all()

    def test_lane_change_unavailable_single_lane(self):
        track = StraightTrack(20.0, num_lanes=1)
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        mask = OptionSet().available_mask(vehicle)
        assert mask[KEEP_LANE] and mask[SLOW_DOWN] and mask[ACCELERATE]
        assert not mask[LANE_CHANGE]

    def test_iteration(self):
        assert [o.index for o in OptionSet()] == [0, 1, 2, 3]


class TestOptionExecutor:
    def test_fixed_duration_termination(self, vehicle):
        executor = OptionExecutor(OptionSet(option_duration=3))
        executor.begin(SLOW_DOWN, vehicle)
        assert not executor.step(vehicle)
        assert not executor.step(vehicle)
        assert executor.step(vehicle)

    def test_step_without_begin_raises(self, vehicle):
        executor = OptionExecutor(OptionSet())
        with pytest.raises(RuntimeError):
            executor.step(vehicle)

    def test_lane_change_targets_other_lane(self, vehicle):
        executor = OptionExecutor(OptionSet())
        executor.begin(LANE_CHANGE, vehicle)
        assert executor.target_lane == 1
        assert executor.merge_direction(vehicle) == 1.0

    def test_lane_change_from_lane_one(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=1)
        executor = OptionExecutor(OptionSet())
        executor.begin(LANE_CHANGE, vehicle)
        assert executor.target_lane == 0
        assert executor.merge_direction(vehicle) == -1.0

    def test_lane_change_terminates_on_arrival(self, vehicle, track):
        executor = OptionExecutor(OptionSet(lane_change_max_steps=10))
        executor.begin(LANE_CHANGE, vehicle)
        vehicle.state.d = track.lane_center(1)
        assert executor.step(vehicle)
        assert executor.lane_change_succeeded(vehicle)

    def test_lane_change_timeout(self, vehicle):
        executor = OptionExecutor(OptionSet(lane_change_max_steps=2))
        executor.begin(LANE_CHANGE, vehicle)
        assert not executor.step(vehicle)
        assert executor.step(vehicle)  # timeout fires
        assert not executor.lane_change_succeeded(vehicle)

    def test_merge_direction_zero_for_other_options(self, vehicle):
        executor = OptionExecutor(OptionSet())
        executor.begin(ACCELERATE, vehicle)
        assert executor.merge_direction(vehicle) == 0.0

    def test_non_lane_change_never_succeeds_merge(self, vehicle):
        executor = OptionExecutor(OptionSet())
        executor.begin(KEEP_LANE, vehicle)
        assert not executor.lane_change_succeeded(vehicle)

    def test_asynchronous_termination_independent(self, track):
        """Two executors with different options terminate on their own clocks."""
        v1, v2 = Vehicle(0, track), Vehicle(1, track)
        v1.reset(s=0.0, lane_id=0)
        v2.reset(s=2.0, lane_id=1)
        e1 = OptionExecutor(OptionSet(option_duration=2))
        e2 = OptionExecutor(OptionSet(option_duration=4))
        e1.begin(KEEP_LANE, v1)
        e2.begin(ACCELERATE, v2)
        fired1 = [e1.step(v1) for _ in range(2)]
        fired2 = [e2.step(v2) for _ in range(2)]
        assert fired1 == [False, True]
        assert fired2 == [False, False]
