"""Tests for batched policy inference and the vectorized training path.

Covers the no-grad inference kernels (``MLP.infer`` & friends must be
bit-identical to the autograd forward), the
:class:`~repro.core.batched.BatchedHeroRunner` option machinery, the
:class:`~repro.core.trainer.BatchedRolloutWorker`, and
``train_hero(..., num_envs=N)`` end to end.
"""

import numpy as np
import pytest

from repro.config import ScenarioConfig, TrainingConfig
from repro.core import (
    BatchedHeroRunner,
    BatchedRolloutWorker,
    HeroTeam,
    KEEP_LANE,
    train_hero,
)
from repro.core.opponent_model import WindowedOpponentModel
from repro.envs import CooperativeLaneChangeEnv, VectorEnv
from repro.nn import MLP, CategoricalPolicy, SquashedGaussianPolicy


def small_scenario(**overrides) -> ScenarioConfig:
    return ScenarioConfig(episode_length=8, **overrides)


def make_setup(num_envs=3, seed=0, **scenario_overrides):
    scenario = small_scenario(**scenario_overrides)
    vec = VectorEnv(num_envs, scenario=scenario)
    team = HeroTeam(
        CooperativeLaneChangeEnv(scenario=scenario),
        np.random.default_rng(seed),
        batch_size=8,
    )
    runner = BatchedHeroRunner(team, vec)
    return vec, team, runner


class TestInferenceKernels:
    """The no-grad forward paths must match the autograd ones bitwise."""

    def test_mlp_infer_matches_forward(self):
        rng = np.random.default_rng(0)
        net = MLP(9, (32, 32), 5, rng)
        x = rng.standard_normal((21, 9))
        np.testing.assert_array_equal(net.infer(x), net.forward(x).data)

    def test_categorical_inference_matches(self):
        rng = np.random.default_rng(1)
        policy = CategoricalPolicy(7, 4, rng)
        x = rng.standard_normal((13, 7))
        np.testing.assert_array_equal(
            policy.logits_inference(x), policy.forward(x).data
        )
        np.testing.assert_array_equal(
            policy.probs_inference(x), policy.probs(x).data
        )

    def test_squashed_gaussian_act_batch_matches(self):
        rng = np.random.default_rng(2)
        policy = SquashedGaussianPolicy(
            6, 2, rng, action_low=np.array([0.0, -0.5]),
            action_high=np.array([0.3, 0.5]),
        )
        x = rng.standard_normal((11, 6))
        np.testing.assert_array_equal(policy.act_batch(x), policy.deterministic(x))
        sampled_fast = policy.act_batch(x, np.random.default_rng(42))
        sampled_ref, _ = policy.sample(x, np.random.default_rng(42))
        np.testing.assert_array_equal(sampled_fast, sampled_ref.data)


class TestBatchedHeroRunner:
    def test_act_produces_bounded_actions(self):
        vec, team, runner = make_setup()
        obs = vec.reset(0)
        actions = runner.act(obs, epsilon=0.3, explore=True)
        assert actions.shape == (vec.num_envs, vec.num_agents, 2)
        space = team.env.action_spaces[team.env.agents[0]]
        assert np.all(actions[..., 0] >= space.low[0] - 1e-12)
        assert np.all(actions[..., 0] <= space.high[0] + 1e-12)
        assert np.all(np.abs(actions[..., 1]) <= space.high[1] + 1e-12)

    def test_rollout_fills_buffers_and_histories(self):
        vec, team, runner = make_setup()
        obs = vec.reset(0)
        for _ in range(30):
            actions = runner.act(obs, epsilon=0.5, explore=True)
            obs, rewards, dones, infos = vec.step(actions)
            runner.after_step(obs, rewards, dones, infos)
        for agent in team.agents.values():
            assert len(agent.high_level.buffer) > 0
            assert len(agent.high_level.opponent_model.history) > 0
        # Stored SMDP transitions must carry real option spans.
        buffer = team.agents[team.env.agents[0]].high_level.buffer
        stored = buffer.steps[: len(buffer)]
        assert np.all(stored >= 1)
        assert np.all(stored <= vec.scenario.episode_length)

    def test_episode_stats_reported_on_done(self):
        vec, team, runner = make_setup()
        obs = vec.reset(0)
        collected = []
        for _ in range(25):
            actions = runner.act(obs, epsilon=0.5, explore=True)
            obs, rewards, dones, infos = vec.step(actions)
            collected.extend(runner.after_step(obs, rewards, dones, infos))
        assert collected, "8-step episodes must finish within 25 steps"
        for stat in collected:
            assert set(stat) >= {"env", "episode", "lane_change_attempts"}
            assert stat["episode"]["length"] >= 1.0

    def test_start_episode_resets_counters(self):
        vec, team, runner = make_setup()
        obs = vec.reset(0)
        for _ in range(10):
            actions = runner.act(obs, epsilon=1.0, explore=True)
            obs, rewards, dones, infos = vec.step(actions)
            runner.after_step(obs, rewards, dones, infos)
        runner.start_episode(0)
        assert runner.lane_change_attempts[0] == 0
        assert bool(runner._needs_new[0].all())
        assert runner._option[0, 0] == KEEP_LANE

    def test_rejects_windowed_opponent_model(self):
        vec, team, _ = make_setup()
        agent = team.agents[team.env.agents[0]]
        high = agent.high_level
        high.opponent_model = WindowedOpponentModel(
            high.obs_dim, high.num_options, high.num_opponents,
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="Windowed"):
            BatchedHeroRunner(team, vec)

    def test_rejects_distributed_observation_service(self):
        """The batched path must not silently bypass the DTDE bus."""
        from repro.distributed import DistributedObservationService

        scenario = small_scenario()
        vec = VectorEnv(2, scenario=scenario)
        env = CooperativeLaneChangeEnv(scenario=scenario)
        service = DistributedObservationService(env.agents, seed=0)
        team = HeroTeam(
            env, np.random.default_rng(0), observation_service=service
        )
        with pytest.raises(ValueError, match="ObservationService"):
            BatchedHeroRunner(team, vec)

    def test_rejects_custom_initiation_predicates(self):
        """A state-dependent initiation set cannot be frozen into the
        runner's static availability mask."""
        from repro.core.options import OptionSet

        option_set = OptionSet()
        custom = option_set.options[0]
        object.__setattr__(custom, "initiation", lambda vehicle: vehicle.lane_id == 0)
        scenario = small_scenario()
        vec = VectorEnv(2, scenario=scenario)
        team = HeroTeam(
            CooperativeLaneChangeEnv(scenario=scenario),
            np.random.default_rng(0),
            option_set=option_set,
        )
        with pytest.raises(ValueError, match="initiation"):
            BatchedHeroRunner(team, vec)

    def test_requires_feature_observations(self):
        scenario = small_scenario(observation_mode="image")
        vec = VectorEnv(2, scenario=scenario)
        team = HeroTeam(
            CooperativeLaneChangeEnv(scenario=small_scenario()),
            np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="features"):
            BatchedHeroRunner(team, vec)


class TestBatchedRolloutWorker:
    def test_collect_returns_indexed_episodes(self):
        vec, team, runner = make_setup()
        worker = BatchedRolloutWorker(vec, team, runner)
        worker.reset([1, 2, 3])
        stats = worker.collect(lambda episode: 0.5)
        assert stats
        indices = [stat["episode_index"] for stat in stats]
        assert all(0 <= i < vec.num_envs for i in indices)
        # The finished envs must have been relaunched with fresh indices.
        assert worker.episode_indices.max() >= vec.num_envs

    def test_collect_epsilon_follows_schedule(self):
        vec, team, runner = make_setup()
        worker = BatchedRolloutWorker(vec, team, runner)
        worker.reset([1, 2, 3])
        stats = worker.collect(lambda episode: 0.1 * (episode + 1))
        for stat in stats:
            assert stat["epsilon"] == pytest.approx(
                0.1 * (stat["episode_index"] + 1)
            )


class TestTrainHeroVectorized:
    def test_train_hero_num_envs_runs_and_logs(self):
        config = TrainingConfig(seed=0, num_envs=4)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        team = HeroTeam(env, np.random.default_rng(0), batch_size=8)
        logger = train_hero(
            env,
            team,
            episodes=6,
            config=config,
            num_envs=config.num_envs,
            eval_every=3,
            eval_episodes=1,
        )
        rewards = logger.values("hero/episode_reward")
        assert len(rewards) == 6
        assert np.all(np.isfinite(rewards))
        assert len(logger.values("hero/eval_episode_reward")) >= 1
        for agent in team.agents.values():
            assert len(agent.high_level.buffer) > 0

    def test_rejects_env_subclass(self):
        """Vectorizing a subclassed env would silently swap its dynamics."""

        class CustomEnv(CooperativeLaneChangeEnv):
            pass

        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        env = CustomEnv(scenario=config.scenario)
        team = HeroTeam(env, np.random.default_rng(0), batch_size=8)
        with pytest.raises(ValueError, match="CustomEnv"):
            train_hero(env, team, episodes=2, config=config, num_envs=2)

    def test_custom_scripted_policy_is_replicated(self, monkeypatch):
        """The caller's traffic must reach the vectorized envs (via the
        scalar fallback), not be swapped for the default SlowLeader."""
        from repro.envs import ScriptedPolicy

        class CustomPolicy(ScriptedPolicy):
            def act(self, vehicle, others):
                return 0.0, 0.0

        import repro.core.trainer as trainer_module

        built = []
        original = trainer_module.VectorEnv

        def recording_vector_env(num_envs, **kwargs):
            vec = original(num_envs, **kwargs)
            built.append(vec)
            return vec

        monkeypatch.setattr(trainer_module, "VectorEnv", recording_vector_env)
        config = TrainingConfig(seed=0)
        config.scenario = small_scenario()
        policy = CustomPolicy()
        env = CooperativeLaneChangeEnv(
            scenario=config.scenario, scripted_policy=policy
        )
        team = HeroTeam(env, np.random.default_rng(0), batch_size=8)
        logger = train_hero(
            env, team, episodes=2, config=config, num_envs=2, eval_every=0
        )
        assert len(logger.values("hero/episode_reward")) == 2
        (vec,) = built
        assert not vec.fast_path  # custom traffic -> scalar fallback
        assert all(e._scripted_policy is policy for e in vec.envs)

    def test_num_envs_defaults_from_config(self, monkeypatch):
        """train_hero must honour TrainingConfig.num_envs when the kwarg
        is omitted (the config field must not be write-only)."""
        import repro.core.trainer as trainer_module

        built = []
        original = trainer_module.VectorEnv

        def recording_vector_env(num_envs, **kwargs):
            built.append(num_envs)
            return original(num_envs, **kwargs)

        monkeypatch.setattr(trainer_module, "VectorEnv", recording_vector_env)
        config = TrainingConfig(seed=0, num_envs=2)
        config.scenario = small_scenario()
        env = CooperativeLaneChangeEnv(scenario=config.scenario)
        team = HeroTeam(env, np.random.default_rng(0), batch_size=8)
        train_hero(env, team, episodes=2, config=config, eval_every=0)
        assert built == [2]
