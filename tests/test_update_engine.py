"""Equivalence locks for the fused gradient-update engine (ISSUE 4).

Three layers of guarantees:

* the **flat optimisers** in ``repro.nn.optim`` are *bitwise* identical to
  the per-parameter loops they replaced (reference implementations below
  reproduce the historical math expression for expression);
* the **no-graph helpers** (``sample_no_grad``, ``min_q_inference``) are
  bitwise identical to their tape counterparts;
* the **fused update engine** (stacked families + manual VJP) matches the
  default per-network update loop within float tolerance — not bitwise,
  because batched BLAS matmuls are not row-wise bit-stable across batch
  sizes (same caveat as the vectorized rollout layer).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_baseline, train_marl
from repro.config import ScenarioConfig, TrainingConfig
from repro.core import HeroTeam, UpdateEngine, train_hero
from repro.core.low_level import SACAgent
from repro.core.update_engine import FamilyAdam, StackedMLP
from repro.core.trainer import train_low_level_skills
from repro.envs import CooperativeLaneChangeEnv, make_baseline_env
from repro.nn import (
    MLP,
    Adam,
    Parameter,
    RMSprop,
    SGD,
    SquashedGaussianPolicy,
    Tensor,
    TwinQNetwork,
    clip_grad_norm,
)
from repro.nn.optim import clip_grad_norm_flat, clip_grad_norm_stacked

RNG = np.random.default_rng


# ----------------------------------------------------------------------
# Reference (seed) per-parameter optimiser math
# ----------------------------------------------------------------------
def _seed_sgd_step(params, velocity, grads, lr, momentum, weight_decay):
    for value, vel, grad in zip(params, velocity, grads):
        if grad is None:
            continue
        if weight_decay:
            grad = grad + weight_decay * value
        if momentum:
            vel *= momentum
            vel += grad
            grad = vel
        value -= lr * grad


def _seed_adam_step(params, state, grads, lr, betas=(0.9, 0.999), eps=1e-8, wd=0.0):
    beta1, beta2 = betas
    state["t"] += 1
    bias1 = 1.0 - beta1 ** state["t"]
    bias2 = 1.0 - beta2 ** state["t"]
    for value, m, v, grad in zip(params, state["m"], state["v"], grads):
        if grad is None:
            continue
        if wd:
            grad = grad + wd * value
        m *= beta1
        m += (1.0 - beta1) * grad
        v *= beta2
        v += (1.0 - beta2) * grad**2
        value -= lr * (m / bias1) / (np.sqrt(v / bias2) + eps)


def _seed_rmsprop_step(params, sqs, grads, lr, alpha=0.99, eps=1e-8):
    for value, sq, grad in zip(params, sqs, grads):
        if grad is None:
            continue
        sq *= alpha
        sq += (1.0 - alpha) * grad**2
        value -= lr * grad / (np.sqrt(sq) + eps)


_SHAPES = [(7, 5), (5,), (5, 3), (3,)]


def _grad_stream(steps, drop_every=None):
    """Deterministic per-step gradients, occasionally dropping one param."""
    rng = RNG(99)
    for step in range(steps):
        grads = [rng.standard_normal(shape) for shape in _SHAPES]
        if drop_every and step % drop_every == 2:
            grads[step % len(grads)] = None
        yield grads


class TestFlatOptimizersBitwise:
    """Flat-buffer steps == per-parameter loops, bit for bit, 100 steps."""

    def _init(self):
        rng = RNG(0)
        values = [rng.standard_normal(shape) for shape in _SHAPES]
        params = [Parameter(value.copy()) for value in values]
        reference = [value.copy() for value in values]
        return params, reference

    def _run(self, opt, params, reference, step_reference, drop_every=3):
        for grads in _grad_stream(100, drop_every=drop_every):
            for param, grad in zip(params, grads):
                param.grad = None if grad is None else grad.copy()
            opt.step()
            step_reference(grads)
        for param, value in zip(params, reference):
            assert (param.data == value).all()

    def test_adam(self):
        params, reference = self._init()
        opt = Adam(params, lr=0.01, weight_decay=0.01)
        state = {
            "t": 0,
            "m": [np.zeros_like(v) for v in reference],
            "v": [np.zeros_like(v) for v in reference],
        }
        self._run(
            opt,
            params,
            reference,
            lambda grads: _seed_adam_step(reference, state, grads, 0.01, wd=0.01),
        )

    def test_sgd_momentum(self):
        params, reference = self._init()
        opt = SGD(params, lr=0.05, momentum=0.9, weight_decay=0.001)
        velocity = [np.zeros_like(v) for v in reference]
        self._run(
            opt,
            params,
            reference,
            lambda grads: _seed_sgd_step(
                reference, velocity, grads, 0.05, 0.9, 0.001
            ),
        )

    def test_rmsprop(self):
        params, reference = self._init()
        opt = RMSprop(params, lr=0.01)
        sqs = [np.zeros_like(v) for v in reference]
        self._run(
            opt,
            params,
            reference,
            lambda grads: _seed_rmsprop_step(reference, sqs, grads, 0.01),
            drop_every=None,
        )

    def test_step_allocates_nothing_per_param(self):
        """The weight-decay path must reuse scratch buffers (in-place)."""
        params, _ = self._init()
        opt = Adam(params, lr=0.01, weight_decay=0.1)
        for param in params:
            param.grad = np.ones_like(param.data)
        opt.step()
        buf_before = opt._buf
        for param in params:
            param.grad = np.ones_like(param.data)
        opt.step()
        assert opt._buf is buf_before  # same scratch buffer, no reallocation

    def test_load_state_dict_resyncs_views(self):
        """Reassigned ``.data`` (load_state_dict) is re-adopted on step."""
        net = MLP(4, [8], 2, RNG(0))
        opt = Adam(net.parameters(), lr=0.01)
        state = {k: v * 2.0 for k, v in net.state_dict().items()}
        net.load_state_dict(state)
        loaded = net.state_dict()
        for param in net.parameters():
            param.grad = np.zeros_like(param.data)
        opt.step()
        for key, value in net.state_dict().items():
            np.testing.assert_array_equal(value, loaded[key])


class TestClipGradNorm:
    def test_flat_matches_loop(self):
        rng = RNG(1)
        grads = [rng.standard_normal(shape) for shape in _SHAPES]
        params = [Parameter(np.zeros(shape)) for shape in _SHAPES]
        for param, grad in zip(params, grads):
            param.grad = grad.copy()
        flat = np.concatenate([g.reshape(-1) for g in grads])
        norm_loop = clip_grad_norm(params, max_norm=1.0)
        norm_flat = clip_grad_norm_flat(flat, max_norm=1.0)
        assert norm_flat == pytest.approx(norm_loop, rel=1e-12)
        clipped_loop = np.concatenate([p.grad.reshape(-1) for p in params])
        np.testing.assert_allclose(flat, clipped_loop, rtol=1e-12)

    def test_flat_noop_below_threshold(self):
        flat = np.full(4, 0.1)
        clip_grad_norm_flat(flat, max_norm=10.0)
        np.testing.assert_allclose(flat, 0.1)

    def test_stacked_matches_per_member_loop(self):
        rng = RNG(2)
        num_members = 3
        stacked = [rng.standard_normal((num_members, 6, 4)) * 3.0,
                   rng.standard_normal((num_members, 1, 4)) * 3.0]
        expected_norms = []
        expected = [g.copy() for g in stacked]
        for k in range(num_members):
            member_params = []
            for grad in expected:
                param = Parameter(np.zeros(grad.shape[1:]))
                param.grad = grad[k]
                member_params.append(param)
            expected_norms.append(clip_grad_norm(member_params, max_norm=1.0))
        norms = clip_grad_norm_stacked(stacked, max_norm=1.0)
        np.testing.assert_allclose(norms, expected_norms, rtol=1e-12)
        for got, want in zip(stacked, expected):
            np.testing.assert_allclose(got, want, rtol=1e-12)


class TestNoGraphHelpers:
    """The tape-free sampling/eval helpers are bitwise equal to the tape."""

    def test_sample_no_grad_matches_sample(self):
        policy = SquashedGaussianPolicy(
            6, 2, RNG(0), action_low=np.array([0.0, -0.1]),
            action_high=np.array([0.2, 0.1]),
        )
        obs = RNG(1).standard_normal((32, 6))
        action_tape, log_prob_tape = policy.sample(obs, RNG(7))
        action_fast, log_prob_fast = policy.sample_no_grad(obs, RNG(7))
        np.testing.assert_array_equal(action_fast, action_tape.data)
        np.testing.assert_array_equal(log_prob_fast, log_prob_tape.data)

    def test_min_q_inference_matches_min_q(self):
        critic = TwinQNetwork(6, 2, RNG(0))
        rng = RNG(3)
        obs = rng.standard_normal((16, 6))
        action = rng.standard_normal((16, 2))
        np.testing.assert_array_equal(
            critic.min_q_inference(obs, action), critic.min_q(obs, action).data
        )


class TestStackedMLP:
    def _family(self, num_members=3):
        members = [MLP(5, [8, 8], 4, RNG(10 + k)) for k in range(num_members)]
        return members, StackedMLP(members)

    def test_forward_matches_members(self):
        members, family = self._family()
        family.bind_members()
        x = RNG(0).standard_normal((3, 12, 5))
        out = family.forward(Tensor(x)).data
        for k, member in enumerate(members):
            np.testing.assert_allclose(
                out[k], member(Tensor(x[k])).data, rtol=1e-12
            )
        np.testing.assert_allclose(family.infer(x), out, rtol=1e-12)

    def test_member_views_stay_live(self):
        members, family = self._family()
        opt = FamilyAdam(family.params(), len(members), lr=0.05)
        family.bind_members()
        before = members[0].state_dict()
        for param in family.params():
            param.grad = np.ones_like(param.data)
        opt.step()
        after = members[0].state_dict()
        # The member's parameters alias the family stack: the family step
        # must be visible through the member without any copy.
        assert any((before[k] != after[k]).any() for k in before)

    def test_sync_members_readopts_loaded_state(self):
        members, family = self._family()
        family.bind_members()
        doubled = {k: v * 2.0 for k, v in members[1].state_dict().items()}
        members[1].load_state_dict(doubled)
        family.sync_members()
        x = RNG(5).standard_normal((3, 4, 5))
        np.testing.assert_allclose(
            family.infer(x)[1], members[1](Tensor(x[1])).data, rtol=1e-12
        )

    def test_manual_backward_matches_tape(self):
        members, family = self._family()
        family.bind_members()
        x = RNG(4).standard_normal((3, 12, 5))
        grad_out = RNG(6).standard_normal((3, 12, 4))

        out = family.forward(Tensor(x))
        family.zero_grad()
        out.backward(grad_out)
        tape_grads = [param.grad.copy() for param in family.params()]

        cached, cache = family.forward_cached(x)
        np.testing.assert_allclose(cached, out.data, rtol=1e-12)
        family.zero_grad()
        family.backward_cached(cache, grad_out.copy())
        for manual, tape in zip(
            [param.grad for param in family.params()], tape_grads
        ):
            np.testing.assert_allclose(manual, tape, rtol=1e-10, atol=1e-12)


class TestFamilyAdam:
    def test_masked_steps_match_independent_adams(self):
        """Per-member masking == K independent Adam optimisers."""
        num_members, shape = 3, (4, 2)
        rng = RNG(0)
        init = rng.standard_normal((num_members,) + shape)
        stacked = Parameter(init.copy())
        family_opt = FamilyAdam([stacked], num_members, lr=0.02)
        singles = [Parameter(init[k].copy()) for k in range(num_members)]
        single_opts = [Adam([p], lr=0.02) for p in singles]
        for step in range(40):
            grads = rng.standard_normal((num_members,) + shape)
            active = np.array([True, step % 2 == 0, step % 3 != 0])
            stacked.grad = grads * active[:, None, None]
            family_opt.step(active)
            for k in range(num_members):
                if active[k]:
                    singles[k].grad = grads[k].copy()
                    single_opts[k].step()
        for k in range(num_members):
            np.testing.assert_allclose(
                stacked.data[k], singles[k].data, rtol=1e-10, atol=1e-12
            )


# ----------------------------------------------------------------------
# Fused engine vs. the default per-network update loop
# ----------------------------------------------------------------------
def _make_hero_team():
    scenario = ScenarioConfig(episode_length=12)
    config = TrainingConfig(seed=0)
    config.scenario = scenario
    env = CooperativeLaneChangeEnv(scenario=scenario)
    team = HeroTeam(env, RNG(0), batch_size=16)
    # Roll out without updates so both copies start from identical buffers.
    train_hero(
        env, team, episodes=4, config=config, eval_every=0, updates_per_episode=0
    )
    return env, team


def _fill_sac(agent, transitions=200):
    fill = RNG(42)
    for _ in range(transitions):
        agent.buffer.push(
            fill.standard_normal(agent.obs_dim),
            fill.uniform(-0.1, 0.2, agent.action_dim),
            fill.standard_normal(),
            fill.standard_normal(agent.obs_dim),
            fill.uniform() < 0.1,
        )


class TestFusedEngineEquivalence:
    def test_hero_team_update(self):
        _, team_scalar = _make_hero_team()
        _, team_fused = _make_hero_team()
        engine = UpdateEngine(team_fused)
        for step in range(6):
            scalar = team_scalar.update()
            fused = engine.update()
            assert set(scalar) == set(fused)
            for key in scalar:
                assert np.isclose(scalar[key], fused[key], rtol=1e-6, atol=1e-8), (
                    step,
                    key,
                )
        state_scalar = team_scalar.state_dict()
        state_fused = team_fused.state_dict()
        for key in state_scalar:
            np.testing.assert_allclose(
                state_scalar[key], state_fused[key], rtol=1e-6, atol=1e-9,
                err_msg=key,
            )

    def test_sac_update(self):
        def make():
            agent = SACAgent(
                obs_dim=6,
                action_dim=2,
                rng=RNG(1),
                action_low=np.array([0.0, -0.1]),
                action_high=np.array([0.2, 0.1]),
                batch_size=32,
            )
            _fill_sac(agent)
            return agent

        scalar, fused = make(), make()
        engine = UpdateEngine(fused)
        for step in range(10):
            losses_scalar = scalar.update()
            losses_fused = engine.update()
            for key in losses_scalar:
                assert np.isclose(
                    losses_scalar[key], losses_fused[key], rtol=1e-6, atol=1e-9
                ), (step, key)
        state_scalar, state_fused = scalar.state_dict(), fused.state_dict()
        for key in state_scalar:
            np.testing.assert_allclose(
                state_scalar[key], state_fused[key], rtol=1e-6, atol=1e-9,
                err_msg=key,
            )

    def test_idqn_update(self):
        def make():
            env = make_baseline_env(scenario=ScenarioConfig(episode_length=12))
            algo = make_baseline("idqn", env, seed=0, batch_size=32)
            fill = RNG(7)
            for _ in range(80):
                obs = {a: fill.standard_normal(algo.obs_dim) for a in algo.agent_ids}
                nxt = {a: fill.standard_normal(algo.obs_dim) for a in algo.agent_ids}
                acts = {
                    a: int(fill.integers(0, algo.num_actions))
                    for a in algo.agent_ids
                }
                rews = {a: float(fill.standard_normal()) for a in algo.agent_ids}
                dones = {a: bool(fill.uniform() < 0.1) for a in algo.agent_ids}
                dones["__all__"] = False
                algo.observe(obs, acts, rews, nxt, dones)
            return algo

        scalar, fused = make(), make()
        engine = UpdateEngine(fused)
        for step in range(8):
            losses_scalar = scalar.update()
            losses_fused = engine.update()
            assert set(losses_scalar) == set(losses_fused)
            for key in losses_scalar:
                assert np.isclose(
                    losses_scalar[key], losses_fused[key], rtol=1e-6, atol=1e-9
                ), (step, key)
        for agent_id in scalar.agent_ids:
            scalar_net = dict(scalar.q_networks[agent_id].named_parameters())
            fused_net = dict(fused.q_networks[agent_id].named_parameters())
            for name in scalar_net:
                np.testing.assert_allclose(
                    scalar_net[name].data,
                    fused_net[name].data,
                    rtol=1e-6,
                    atol=1e-9,
                    err_msg=f"{agent_id}.{name}",
                )

    def test_maddpg_update(self):
        scalar, fused = _make_joint_baseline("maddpg"), _make_joint_baseline("maddpg")
        engine = UpdateEngine(fused)
        from repro.core.update_engine import MADDPGUpdateEngine

        assert isinstance(engine._impl, MADDPGUpdateEngine)  # no delegation
        for step in range(6):
            losses_scalar = scalar.update()
            losses_fused = engine.update()
            assert set(losses_scalar) == set(losses_fused)
            for key in losses_scalar:
                assert np.isclose(
                    losses_scalar[key], losses_fused[key], rtol=1e-6, atol=1e-9
                ), (step, key)
        state_scalar, state_fused = scalar.state_dict(), fused.state_dict()
        for key in state_scalar:
            np.testing.assert_allclose(
                state_scalar[key], state_fused[key], rtol=1e-6, atol=1e-9,
                err_msg=key,
            )

    def test_maac_update(self):
        scalar, fused = _make_joint_baseline("maac"), _make_joint_baseline("maac")
        engine = UpdateEngine(fused)
        from repro.core.update_engine import MAACUpdateEngine

        assert isinstance(engine._impl, MAACUpdateEngine)  # no delegation
        for step in range(6):
            losses_scalar = scalar.update()
            losses_fused = engine.update()
            assert set(losses_scalar) == set(losses_fused)
            for key in losses_scalar:
                assert np.isclose(
                    losses_scalar[key], losses_fused[key], rtol=1e-6, atol=1e-9
                ), (step, key)
        state_scalar, state_fused = scalar.state_dict(), fused.state_dict()
        for key in state_scalar:
            np.testing.assert_allclose(
                state_scalar[key], state_fused[key], rtol=1e-6, atol=1e-9,
                err_msg=key,
            )

    def test_delegating_engine_for_coma(self):
        """COMA (variable-length episodes) is the only remaining delegation."""
        env = make_baseline_env(scenario=ScenarioConfig(episode_length=12))
        algo = make_baseline("coma", env, seed=0)
        engine = UpdateEngine(algo)
        from repro.core.update_engine import _DelegatingEngine

        assert isinstance(engine._impl, _DelegatingEngine)
        assert engine.update() is None  # no episodes queued -> delegates

    def test_rejects_unknown_targets(self):
        with pytest.raises(TypeError):
            UpdateEngine(object())


def _make_joint_baseline(name, seed=0, batch_size=64, fill_seed=3, steps=400):
    """A MADDPG/MAAC instance with a deterministically filled joint buffer."""
    env = make_baseline_env(scenario=ScenarioConfig(episode_length=12))
    algo = make_baseline(name, env, seed=seed, batch_size=batch_size)
    fill = RNG(fill_seed)
    n, obs_dim, num_actions = algo.num_agents, algo.obs_dim, algo.num_actions
    algo.buffer.push_batch(
        fill.standard_normal((steps, n, obs_dim)),
        fill.integers(0, num_actions, (steps, n)),
        fill.standard_normal((steps, n)),
        fill.standard_normal((steps, n, obs_dim)),
        fill.uniform(size=steps) < 0.1,
    )
    return algo


class TestMAACInferPath:
    """The no-grad TD-target kernels leave the default path bitwise intact."""

    def test_infer_bitwise_equals_forward(self):
        algo = _make_joint_baseline("maac")
        fill = RNG(11)
        obs = fill.standard_normal((17, algo.num_agents, algo.obs_dim)).astype(
            algo.buffer.obs.dtype
        )
        actions = fill.integers(0, algo.num_actions, (17, algo.num_agents))
        tape_rows = algo.critic(obs, actions)
        infer_rows = algo.critic.infer(obs, actions)
        for i in range(algo.num_agents):
            assert infer_rows[i].dtype == tape_rows[i].data.dtype
            np.testing.assert_array_equal(infer_rows[i], tape_rows[i].data)

    def test_default_update_bitwise_vs_tape_targets(self):
        """MAAC.update == the pre-infer build (tape TD targets), bit for bit."""
        current, reference = _make_joint_baseline("maac"), _make_joint_baseline("maac")
        for _ in range(3):
            losses_current = current.update()
            losses_reference = _maac_update_tape_targets(reference)
            assert losses_current == losses_reference
        state_current, state_reference = current.state_dict(), reference.state_dict()
        for key in state_current:
            np.testing.assert_array_equal(
                state_current[key], state_reference[key], err_msg=key
            )


def _maac_update_tape_targets(algo):
    """``MAAC.update`` as built before the infer swap: TD-target rows from
    the tape forward (nodes built, never backpropped).  Kept verbatim as the
    bitwise reference for the default path."""
    from repro.nn import (
        Tensor,
        clip_grad_norm,
        entropy_from_logits,
        mse_loss,
        sample_categorical,
        soft_update,
    )
    from repro.nn.functional import log_softmax
    from repro.baselines.maac import _logsumexp_rows

    if len(algo.buffer) < max(algo.batch_size // 4, 8):
        return None
    batch = algo.buffer.sample(algo.batch_size, algo._rng)
    batch_size = len(batch["dones"])
    n = algo.num_agents

    next_actions = np.zeros((batch_size, n), dtype=np.int64)
    next_log_probs = np.zeros((batch_size, n))
    for i in range(n):
        logits = algo.actor.logits_inference(
            algo._actor_input(batch["next_obs"][:, i], i)
        )
        next_actions[:, i] = sample_categorical(logits, algo._rng)
        row_log_probs = logits - _logsumexp_rows(logits)
        next_log_probs[:, i] = np.take_along_axis(
            row_log_probs, next_actions[:, i][:, None], axis=-1
        )[:, 0]

    target_rows = algo.target_critic(batch["next_obs"], next_actions)
    critic_rows = algo.critic(batch["obs"], batch["actions"])

    critic_loss_total = None
    for i in range(n):
        target_q = np.take_along_axis(
            target_rows[i].data, next_actions[:, i][:, None], axis=-1
        )[:, 0]
        soft_target = target_q - algo.alpha * next_log_probs[:, i]
        y = batch["rewards"][:, i] + algo.gamma * (1.0 - batch["dones"]) * soft_target
        q_chosen = critic_rows[i].gather(
            batch["actions"][:, i][:, None], axis=-1
        ).squeeze(-1)
        loss = mse_loss(q_chosen, y)
        critic_loss_total = (
            loss if critic_loss_total is None else critic_loss_total + loss
        )

    algo.critic_opt.zero_grad()
    critic_loss_total.backward()
    clip_grad_norm(algo.critic.parameters(), algo.grad_clip)
    algo.critic_opt.step()

    q_rows_data = [row.data for row in algo.critic(batch["obs"], batch["actions"])]
    actor_loss_total = None
    entropy_total = 0.0
    for i in range(n):
        logits = algo.actor.forward(algo._actor_input(batch["obs"][:, i], i))
        log_probs = log_softmax(logits, axis=-1)
        probs = np.exp(log_probs.data)
        q_data = q_rows_data[i]
        baseline = (probs * q_data).sum(axis=-1)
        sampled = sample_categorical(logits.data, algo._rng)
        advantage = (
            np.take_along_axis(q_data, sampled[:, None], axis=-1)[:, 0] - baseline
        )
        chosen_log_probs = log_probs.gather(sampled[:, None], axis=-1).squeeze(-1)
        target_term = advantage - algo.alpha * chosen_log_probs.data
        loss = -(chosen_log_probs * Tensor(target_term)).mean()
        actor_loss_total = (
            loss if actor_loss_total is None else actor_loss_total + loss
        )
        entropy_total += float(entropy_from_logits(logits).mean().data)

    algo.actor_opt.zero_grad()
    actor_loss_total.backward()
    clip_grad_norm(algo.actor.parameters(), algo.grad_clip)
    algo.actor_opt.step()

    soft_update(algo.target_critic, algo.critic, algo.tau)
    return {
        "critic_loss": critic_loss_total.item(),
        "actor_loss": actor_loss_total.item(),
        "entropy": entropy_total / n,
    }


class TestFusedTrainingEndToEnd:
    """--fused-updates trains HERO + a baseline to the same trajectories.

    A few episodes from scratch: RNG consumption is draw-for-draw identical,
    so rollouts coincide and only last-ulp update noise differs; losses and
    returns must agree to tolerance.
    """

    def test_hero_few_episodes(self):
        def run(fused):
            scenario = ScenarioConfig(episode_length=10)
            config = TrainingConfig(seed=3, fused_updates=fused)
            config.scenario = scenario
            env = CooperativeLaneChangeEnv(scenario=scenario)
            team = HeroTeam(env, RNG(3), batch_size=16)
            logger = train_hero(
                env, team, episodes=5, config=config, eval_every=0
            )
            return logger

        default = run(False)
        fused = run(True)
        for metric in ("hero/episode_reward", "hero/critic_loss"):
            default_series = default.values(metric)
            assert len(default_series), f"{metric} never logged"
            np.testing.assert_allclose(
                default_series,
                fused.values(metric),
                rtol=1e-4,
                atol=1e-6,
                err_msg=metric,
            )

    def test_idqn_few_episodes(self):
        def run(fused):
            env = make_baseline_env(scenario=ScenarioConfig(episode_length=10))
            algo = make_baseline("idqn", env, seed=5, batch_size=16)
            logger = train_marl(
                env, algo, episodes=5, seed=5, eval_every=0, fused_updates=fused
            )
            return logger

        default = run(False)
        fused = run(True)
        for metric in ("idqn/episode_reward", "idqn/vehicle_0/q_loss"):
            default_series = default.values(metric)
            assert len(default_series), f"{metric} never logged"
            np.testing.assert_allclose(
                default_series,
                fused.values(metric),
                rtol=1e-4,
                atol=1e-6,
                err_msg=metric,
            )

    def test_maddpg_few_episodes(self):
        def run(fused):
            env = make_baseline_env(scenario=ScenarioConfig(episode_length=10))
            algo = make_baseline("maddpg", env, seed=5, batch_size=16)
            logger = train_marl(
                env, algo, episodes=5, seed=5, eval_every=0, fused_updates=fused
            )
            return logger

        default = run(False)
        fused = run(True)
        for metric in ("maddpg/episode_reward", "maddpg/vehicle_0/critic_loss"):
            default_series = default.values(metric)
            assert len(default_series), f"{metric} never logged"
            np.testing.assert_allclose(
                default_series,
                fused.values(metric),
                rtol=1e-4,
                atol=1e-6,
                err_msg=metric,
            )

    def test_maac_few_episodes(self):
        def run(fused):
            env = make_baseline_env(scenario=ScenarioConfig(episode_length=10))
            algo = make_baseline("maac", env, seed=5, batch_size=16)
            logger = train_marl(
                env, algo, episodes=5, seed=5, eval_every=0, fused_updates=fused
            )
            return logger

        default = run(False)
        fused = run(True)
        for metric in ("maac/episode_reward", "maac/critic_loss"):
            default_series = default.values(metric)
            assert len(default_series), f"{metric} never logged"
            np.testing.assert_allclose(
                default_series,
                fused.values(metric),
                rtol=1e-4,
                atol=1e-6,
                err_msg=metric,
            )

    def test_skill_training_fused(self):
        """train_low_level_skills(fused) matches the default within tolerance."""

        def run(fused):
            config = TrainingConfig(seed=1, fused_updates=fused)
            config.scenario = ScenarioConfig(episode_length=10)
            skills, logger = train_low_level_skills(config, episodes=2)
            return skills.state_dict(), logger

        state_default, _ = run(False)
        state_fused, _ = run(True)
        for key in state_default:
            np.testing.assert_allclose(
                state_default[key], state_fused[key], rtol=1e-5, atol=1e-7,
                err_msg=key,
            )
