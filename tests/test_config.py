"""Table I hyperparameters and configuration invariants."""

import numpy as np
import pytest

from repro.config import (
    ACCELERATE_BOUNDS,
    LANE_CHANGE_BOUNDS,
    PaperHyperparameters,
    RewardConfig,
    ScenarioConfig,
    SLOW_DOWN_BOUNDS,
    TrainingConfig,
)


class TestTableI:
    """Assert the values of Table I verbatim."""

    def test_training_episodes(self):
        assert PaperHyperparameters().training_episodes == 14_000

    def test_episode_length(self):
        assert PaperHyperparameters().episode_length == 30

    def test_buffer_capacity(self):
        assert PaperHyperparameters().buffer_capacity == 100_000

    def test_batch_size(self):
        assert PaperHyperparameters().batch_size == 1024

    def test_learning_rate(self):
        assert PaperHyperparameters().learning_rate == 0.01

    def test_discount_factor(self):
        assert PaperHyperparameters().discount_factor == 0.95

    def test_hidden_dim(self):
        assert PaperHyperparameters().hidden_dim == 32

    def test_target_update_rate(self):
        assert PaperHyperparameters().target_update_rate == 0.01


class TestScaled:
    def test_scaled_keeps_other_fields(self):
        scaled = PaperHyperparameters().scaled(0.01)
        assert scaled.training_episodes == 140
        assert scaled.batch_size == 1024
        assert scaled.discount_factor == 0.95

    def test_scaled_bounds(self):
        with pytest.raises(ValueError):
            PaperHyperparameters().scaled(0.0)
        with pytest.raises(ValueError):
            PaperHyperparameters().scaled(1.5)

    def test_scaled_minimum_one_episode(self):
        assert PaperHyperparameters().scaled(1e-9).training_episodes >= 1


class TestActionBounds:
    """Sec. IV-C per-skill speed ranges, verbatim."""

    def test_slow_down(self):
        low, high = SLOW_DOWN_BOUNDS.as_arrays()
        np.testing.assert_allclose(low, [0.04, -0.1])
        np.testing.assert_allclose(high, [0.08, 0.1])

    def test_accelerate(self):
        low, high = ACCELERATE_BOUNDS.as_arrays()
        np.testing.assert_allclose(low, [0.08, -0.1])
        np.testing.assert_allclose(high, [0.14, 0.1])

    def test_lane_change(self):
        low, high = LANE_CHANGE_BOUNDS.as_arrays()
        np.testing.assert_allclose(low, [0.10, 0.12])
        np.testing.assert_allclose(high, [0.20, 0.25])


class TestRewardConfig:
    def test_paper_penalties(self):
        rewards = RewardConfig()
        assert rewards.collision_penalty == -20.0
        assert rewards.lane_change_success_reward == 20.0
        assert rewards.lane_change_fail_penalty == -20.0

    def test_weights_in_unit_interval(self):
        rewards = RewardConfig()
        assert 0.0 <= rewards.alpha <= 1.0
        assert 0.0 <= rewards.beta <= 1.0


class TestScenarioConfig:
    def test_vehicle_counts(self):
        scenario = ScenarioConfig()
        assert scenario.num_learning_vehicles == 3
        assert scenario.num_scripted_vehicles == 1
        assert scenario.num_vehicles == 4  # the paper's four-vehicle setup

    def test_two_lane_track(self):
        assert ScenarioConfig().num_lanes == 2

    def test_frozen(self):
        with pytest.raises(Exception):
            ScenarioConfig().num_lanes = 3


class TestTrainingConfig:
    def test_defaults_derive_from_table1(self):
        config = TrainingConfig()
        assert config.hyper.training_episodes == 14_000
        assert config.hyper.hidden_dim == 32

    def test_mutable_for_annealing(self):
        config = TrainingConfig()
        config.epsilon_start = 0.4
        assert config.epsilon_start == 0.4
