"""Tests for the serving stack (ISSUE 7).

The contract under test:

* checkpoint round trips are **bitwise**: flat vector → rebuild →
  re-export reproduces both every parameter array and the flat vector,
* all five methods expose the unified
  ``state_dict/load_state_dict/save/load`` persistence contract
  (``MARLAlgorithm`` supplies the default implementation),
* served greedy actions are bitwise-equal to the vectorized evaluators'
  at batch sizes {1, 7, 32} (HERO and IDQN) when every slot submits each
  step,
* the micro-batcher honours its flush policy (max-batch-size / max-wait),
  routes results to the right futures under concurrent load, survives
  handler failures, and drains on close,
* corrupted / version-mismatched archives fail with ``CheckpointError``,
* checkpoints hot-reload into a running server between batches.
"""

import os
import threading

import numpy as np
import pytest

from repro import (
    CheckpointError,
    HeroTeam,
    ObservationRequest,
    PolicyClient,
    PolicyServer,
    TrainingConfig,
    load_checkpoint,
    load_policy,
    make_baseline,
    save_checkpoint,
    train_hero,
)
from repro.config import ScenarioConfig
from repro.core.batched import BatchedHeroRunner
from repro.envs import CooperativeLaneChangeEnv, VectorEnv
from repro.envs.wrappers import make_baseline_env, make_baseline_vector_env
from repro.experiments.common import ExperimentResult, TrainedMethod
from repro.experiments.table2 import _load_methods, _persist_methods
from repro.serving import (
    CHECKPOINT_FORMAT_VERSION,
    BatcherClosed,
    MicroBatcher,
    split_hero_batch,
)

BASELINE_NAMES = ["idqn", "coma", "maddpg", "maac"]


def small_scenario() -> ScenarioConfig:
    return ScenarioConfig(episode_length=8)


def fresh_team(seed=3, scenario=None, **kwargs) -> HeroTeam:
    env = CooperativeLaneChangeEnv(scenario=scenario or small_scenario())
    return HeroTeam(env, np.random.default_rng(seed), **kwargs)


def assert_state_equal(s1, s2):
    assert set(s1) == set(s2)
    for key in s1:
        assert np.array_equal(s1[key], s2[key]), key


# ---------------------------------------------------------------------------
# Checkpoint round trips
# ---------------------------------------------------------------------------


def test_hero_checkpoint_roundtrip_bitwise(tmp_path):
    team = fresh_team(seed=11)
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=team.env.scenario, rewards=team.env.rewards)
    loaded = load_policy(path)
    assert loaded.method == "hero"
    assert_state_equal(team.state_dict(), loaded.controller.state_dict())
    # Re-export: flat vector and metadata bytes are reproduced exactly.
    path2 = tmp_path / "hero2.npz"
    save_checkpoint(
        path2, loaded.controller, scenario=loaded.scenario, rewards=loaded.rewards
    )
    ckpt1, ckpt2 = load_checkpoint(path), load_checkpoint(path2)
    assert np.array_equal(ckpt1.flat_params, ckpt2.flat_params)
    assert ckpt1.meta["keys"] == ckpt2.meta["keys"]


def test_hero_checkpoint_preserves_build_and_configs(tmp_path):
    scenario = ScenarioConfig(episode_length=12, num_learning_vehicles=2)
    env = CooperativeLaneChangeEnv(scenario=scenario)
    team = HeroTeam(
        env, np.random.default_rng(0), opponent_mode="observed", batch_size=64
    )
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=scenario, rewards=env.rewards)
    loaded = load_policy(path)
    assert loaded.scenario == scenario
    first = next(iter(loaded.controller.agents.values())).high_level
    assert first.opponent_mode == "observed"
    assert first.batch_size == 64


@pytest.mark.parametrize("name", BASELINE_NAMES)
def test_baseline_checkpoint_roundtrip_bitwise(name, tmp_path):
    env = make_baseline_env(scenario=small_scenario())
    algo = make_baseline(name, env, seed=5)
    path = tmp_path / f"{name}.npz"
    save_checkpoint(path, algo, scenario=small_scenario())
    loaded = load_policy(path)
    assert loaded.method == name
    assert_state_equal(algo.state_dict(), loaded.controller.state_dict())


@pytest.mark.parametrize("name", BASELINE_NAMES)
def test_unified_persistence_contract(name, tmp_path):
    """state_dict/load_state_dict/save/load — the MARLAlgorithm defaults."""
    env = make_baseline_env(scenario=small_scenario())
    source = make_baseline(name, env, seed=1)
    target = make_baseline(name, env, seed=2)  # different init
    state = source.state_dict()
    assert state  # targets + critics + actors discovered generically
    target.load_state_dict(state)
    assert_state_equal(source.state_dict(), target.state_dict())
    # npz save/load round trip
    path = tmp_path / f"{name}_raw.npz"
    source.save(path)
    third = make_baseline(name, env, seed=9)
    third.load(path)
    assert_state_equal(source.state_dict(), third.state_dict())


def test_load_state_dict_strict_mismatch():
    env = make_baseline_env(scenario=small_scenario())
    algo = make_baseline("idqn", env, seed=1)
    state = algo.state_dict()
    state.pop(next(iter(state)))
    with pytest.raises(KeyError, match="missing"):
        algo.load_state_dict(state)
    state = algo.state_dict()
    state["not.a.real.key"] = np.zeros(3)
    with pytest.raises(KeyError, match="unexpected"):
        algo.load_state_dict(state)


def test_train_hero_checkpoint_path(tmp_path):
    scenario = small_scenario()
    config = TrainingConfig(seed=0)
    config.scenario = scenario
    env = CooperativeLaneChangeEnv(scenario=scenario)
    team = HeroTeam(env, np.random.default_rng(0), batch_size=8)
    path = tmp_path / "trained.npz"
    train_hero(
        env, team, episodes=1, config=config, eval_every=0,
        checkpoint_path=str(path),
    )
    loaded = load_policy(path)
    assert_state_equal(team.state_dict(), loaded.controller.state_dict())
    assert loaded.checkpoint.meta["extra"]["seed"] == 0


# ---------------------------------------------------------------------------
# Corrupted / incompatible archives
# ---------------------------------------------------------------------------


def test_load_checkpoint_rejects_garbage(tmp_path):
    path = tmp_path / "garbage.npz"
    path.write_bytes(b"this is not an npz archive")
    with pytest.raises(CheckpointError):
        load_checkpoint(path)


def test_load_checkpoint_rejects_missing_keys(tmp_path):
    path = tmp_path / "wrong.npz"
    np.savez(path, unrelated=np.zeros(4))
    with pytest.raises(CheckpointError, match="missing archive keys"):
        load_checkpoint(path)


def test_load_checkpoint_rejects_version_mismatch(tmp_path):
    team = fresh_team()
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team)
    with np.load(path) as archive:
        entries = {name: archive[name] for name in archive.files}
    entries["format_version"] = np.int64(99)
    np.savez(path, **entries)
    with pytest.raises(CheckpointError, match="99") as excinfo:
        load_checkpoint(path)
    assert str(CHECKPOINT_FORMAT_VERSION) in str(excinfo.value)


def test_load_checkpoint_rejects_corrupted_meta(tmp_path):
    team = fresh_team()
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team)
    with np.load(path) as archive:
        entries = {name: archive[name] for name in archive.files}
    entries["meta"] = np.frombuffer(b"{broken json", dtype=np.uint8).copy()
    np.savez(path, **entries)
    with pytest.raises(CheckpointError, match="metadata"):
        load_checkpoint(path)


def test_load_policy_rejects_unknown_method(tmp_path):
    team = fresh_team()
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team)
    ckpt = load_checkpoint(path)
    from repro.distributed.protocol import encode_json_meta

    meta = dict(ckpt.meta)
    meta["method"] = "not-a-method"
    np.savez(
        path,
        format_version=np.int64(CHECKPOINT_FORMAT_VERSION),
        meta=encode_json_meta(meta),
        flat_params=ckpt.flat_params,
    )
    with pytest.raises(CheckpointError, match="not-a-method"):
        load_policy(path)


# ---------------------------------------------------------------------------
# Micro-batcher
# ---------------------------------------------------------------------------


def test_batcher_flushes_when_full():
    done = threading.Event()

    def handler(batch):
        done.set()
        return [x * 2 for x in batch]

    with MicroBatcher(handler, max_batch_size=4, max_wait_us=30e6) as batcher:
        futures = [batcher.submit(i) for i in range(4)]
        assert [f.result(timeout=10) for f in futures] == [0, 2, 4, 6]
        assert batcher.batch_sizes[0] == 4  # flushed on size, not timeout


def test_batcher_flushes_on_timeout():
    with MicroBatcher(lambda b: list(b), max_batch_size=64, max_wait_us=5_000) as b:
        future = b.submit("lonely")
        assert future.result(timeout=10) == "lonely"
        assert b.batch_sizes == [1]


def test_batcher_handler_error_fails_batch_not_worker():
    def handler(batch):
        if "bad" in batch:
            raise ValueError("poisoned batch")
        return batch

    with MicroBatcher(handler, max_batch_size=1, max_wait_us=1_000) as b:
        bad = b.submit("bad")
        with pytest.raises(ValueError, match="poisoned"):
            bad.result(timeout=10)
        assert b.submit("fine").result(timeout=10) == "fine"


def test_batcher_result_count_mismatch_is_an_error():
    with MicroBatcher(lambda batch: [], max_batch_size=1, max_wait_us=1_000) as b:
        with pytest.raises(RuntimeError, match="returned 0 results"):
            b.submit("x").result(timeout=10)


def test_batcher_close_drains_then_rejects():
    batcher = MicroBatcher(lambda b: list(b), max_batch_size=256, max_wait_us=30e6)
    futures = [batcher.submit(i) for i in range(10)]
    batcher.close()  # must flush the queued 10 before stopping
    assert [f.result(timeout=10) for f in futures] == list(range(10))
    with pytest.raises(BatcherClosed):
        batcher.submit(11)


def test_batcher_concurrent_routing_stress():
    """16 threads x 50 unique payloads: every result routed to its future."""
    with MicroBatcher(
        lambda batch: [x * 2 for x in batch], max_batch_size=16, max_wait_us=500
    ) as batcher:
        failures = []

        def client(base):
            for i in range(50):
                payload = base * 1000 + i
                result = batcher.submit(payload).result(timeout=30)
                if result != payload * 2:
                    failures.append((payload, result))

        threads = [threading.Thread(target=client, args=(t,)) for t in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures


# ---------------------------------------------------------------------------
# Served-action parity (the tentpole contract)
# ---------------------------------------------------------------------------


def _drive_hero_parity(server, ref_runner, vec_env, steps):
    """Step the env with reference actions; assert served == reference."""
    ref_runner.sync_observed_options()
    ref_runner.start_all()
    n = vec_env.num_envs
    obs = vec_env.reset(list(range(n)))
    for step in range(steps):
        ref_actions = ref_runner.act(obs, epsilon=0.0, explore=False)
        requests = split_hero_batch(obs, vec_env.agent_d, vec_env.agent_heading)
        futures = [server.submit_async(r) for r in requests]
        served = np.stack([f.result(timeout=30) for f in futures])
        assert np.array_equal(ref_actions, served), f"divergence at step {step}"
        obs, _, dones, _ = vec_env.step(ref_actions)
        for i in np.flatnonzero(dones):
            ref_runner.start_episode(int(i))
            server.reset_slot(int(i))


@pytest.mark.parametrize("batch", [1, 7, 32])
def test_served_hero_parity(batch, tmp_path):
    """Served greedy actions == evaluate_hero_vectorized's runner, bitwise."""
    scenario = small_scenario()
    team = fresh_team(seed=2, scenario=scenario)
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=scenario, rewards=team.env.rewards)

    vec_env = VectorEnv(batch, scenario=scenario)
    ref_runner = BatchedHeroRunner(load_policy(path).controller, vec_env)
    with PolicyServer(load_policy(path), num_slots=batch, max_wait_us=10e6) as srv:
        _drive_hero_parity(srv, ref_runner, vec_env, steps=10)


def test_served_hero_parity_observed_mode(tmp_path):
    scenario = small_scenario()
    team = fresh_team(seed=4, scenario=scenario, opponent_mode="observed")
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=scenario)
    vec_env = VectorEnv(3, scenario=scenario)
    ref_runner = BatchedHeroRunner(load_policy(path).controller, vec_env)
    with PolicyServer(load_policy(path), num_slots=3, max_wait_us=10e6) as srv:
        _drive_hero_parity(srv, ref_runner, vec_env, steps=10)


def test_served_hero_partial_batches_stay_greedy(tmp_path):
    """Partial flushes route through the subset runner without corrupting
    per-slot state: a full-batch step before and after still matches."""
    scenario = small_scenario()
    team = fresh_team(seed=6, scenario=scenario)
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=scenario)
    vec_env = VectorEnv(4, scenario=scenario)
    loaded = load_policy(path)
    with PolicyServer(loaded, num_slots=4, max_batch_size=4, max_wait_us=3_000) as srv:
        obs = vec_env.reset(list(range(4)))
        requests = split_hero_batch(obs, vec_env.agent_d, vec_env.agent_heading)
        # Submit only two slots: the batcher times out and flushes a partial
        # batch through the subset path.
        futures = [srv.submit_async(requests[i]) for i in (1, 3)]
        partial = [f.result(timeout=30) for f in futures]
        assert all(a.shape == (vec_env.num_agents, 2) for a in partial)
        # The other two slots still answer, and every slot keeps its state.
        futures = [srv.submit_async(requests[i]) for i in (0, 2)]
        rest = [f.result(timeout=30) for f in futures]
        assert all(np.isfinite(a).all() for a in rest)


@pytest.mark.parametrize("batch", [1, 7, 32])
def test_served_idqn_parity(batch, tmp_path):
    """Served baseline actions == act_batch(explore=False), bitwise."""
    scenario = small_scenario()
    env = make_baseline_env(scenario=scenario)
    algo = make_baseline("idqn", env, seed=5)
    path = tmp_path / "idqn.npz"
    save_checkpoint(path, algo, scenario=scenario)
    loaded = load_policy(path)

    vec = make_baseline_vector_env(batch, scenario=scenario)
    try:
        obs = vec.reset(list(range(batch)))
        with PolicyServer(loaded, num_slots=batch, max_wait_us=10e6) as srv:
            for _ in range(6):
                ref = loaded.controller.act_batch(obs, explore=False)
                futures = [
                    srv.submit_async(ObservationRequest(slot=i, obs=obs[i]))
                    for i in range(batch)
                ]
                served = np.stack([f.result(timeout=30) for f in futures])
                assert np.array_equal(ref, served)
                obs = vec.step(ref)[0]
    finally:
        vec.vec_env.close()


def test_server_rejects_bad_slots(tmp_path):
    team = fresh_team()
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=team.env.scenario)
    with PolicyServer(load_policy(path), num_slots=2, max_wait_us=10e6) as srv:
        vec_env = VectorEnv(2, scenario=team.env.scenario)
        obs = vec_env.reset([0, 1])
        requests = split_hero_batch(obs, vec_env.agent_d, vec_env.agent_heading)
        bad = ObservationRequest(
            slot=7, obs=requests[0].obs, d=requests[0].d, heading=requests[0].heading
        )
        future = srv.submit_async(bad)
        # Out-of-range slot fails fast; the server survives.
        with pytest.raises(ValueError, match="out of range"):
            # The lone bad request flushes on max_batch_size=2? No — pair it.
            srv.submit(requests[1])
        with pytest.raises(ValueError, match="out of range"):
            future.result(timeout=30)
        with pytest.raises(ValueError):
            srv.reset_slot(9)


# ---------------------------------------------------------------------------
# Hot reload + socket front-end
# ---------------------------------------------------------------------------


def test_hot_reload_swaps_policy(tmp_path):
    scenario = small_scenario()
    team_a = fresh_team(seed=1, scenario=scenario)
    team_b = fresh_team(seed=99, scenario=scenario)
    path_a, path_b = tmp_path / "a.npz", tmp_path / "b.npz"
    save_checkpoint(path_a, team_a, scenario=scenario)
    save_checkpoint(path_b, team_b, scenario=scenario)

    vec_env = VectorEnv(2, scenario=scenario)
    ref_b = BatchedHeroRunner(load_policy(path_b).controller, vec_env)
    with PolicyServer(load_policy(path_a), num_slots=2, max_wait_us=10e6) as srv:
        srv.reload(path_b)
        for i in range(2):
            srv.reset_slot(i)
        _drive_hero_parity(srv, ref_b, vec_env, steps=6)


def test_hot_reload_rejects_wrong_method(tmp_path):
    team = fresh_team()
    env = make_baseline_env(scenario=small_scenario())
    algo = make_baseline("idqn", env, seed=0)
    hero_path, idqn_path = tmp_path / "hero.npz", tmp_path / "idqn.npz"
    save_checkpoint(hero_path, team, scenario=team.env.scenario)
    save_checkpoint(idqn_path, algo, scenario=small_scenario())
    with PolicyServer(load_policy(hero_path), num_slots=1) as srv:
        with pytest.raises(CheckpointError, match="idqn"):
            srv.reload(idqn_path)


def test_socket_roundtrip_matches_in_process(tmp_path):
    scenario = small_scenario()
    team = fresh_team(seed=8, scenario=scenario)
    path = tmp_path / "hero.npz"
    save_checkpoint(path, team, scenario=scenario)
    vec_env = VectorEnv(2, scenario=scenario)
    ref_runner = BatchedHeroRunner(load_policy(path).controller, vec_env)
    ref_runner.start_all()
    obs = vec_env.reset([0, 1])
    with PolicyServer(load_policy(path), num_slots=2, max_wait_us=10e6) as srv:
        host, port = srv.serve()
        clients = [PolicyClient(host, port) for _ in range(2)]
        try:
            info = clients[0].info()
            assert info.method == "hero"
            assert info.num_slots == 2
            for step in range(4):
                ref_actions = ref_runner.act(obs, epsilon=0.0, explore=False)
                requests = split_hero_batch(
                    obs, vec_env.agent_d, vec_env.agent_heading
                )
                served = [None, None]

                def call(i, req, out=served, cs=clients):
                    out[i] = cs[i].act(req)

                threads = [
                    threading.Thread(target=call, args=(i, requests[i]))
                    for i in range(2)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert np.array_equal(ref_actions, np.stack(served))
                obs, _, dones, _ = vec_env.step(ref_actions)
                for i in np.flatnonzero(dones):
                    ref_runner.start_episode(int(i))
                    assert clients[int(i)].reset_slot(int(i)) is True
            # Server-side errors come back as error frames, not hangs.
            with pytest.raises(RuntimeError, match="out of range"):
                clients[0].reset_slot(55)
        finally:
            for c in clients:
                c.close()


# ---------------------------------------------------------------------------
# TrainedMethod persistence + table2 plumbing
# ---------------------------------------------------------------------------


def test_trained_method_checkpoint_roundtrip(tmp_path):
    scenario = small_scenario()
    team = fresh_team(seed=12, scenario=scenario)
    method = TrainedMethod(
        "hero", None, lambda *a: None, controller=team,
        scenario=scenario, rewards=team.env.rewards,
    )
    path = tmp_path / "hero.npz"
    method.to_checkpoint(path)
    reloaded = TrainedMethod.from_checkpoint(path)
    assert reloaded.name == "hero"
    assert reloaded.scenario == scenario
    assert_state_equal(team.state_dict(), reloaded.controller.state_dict())
    # The rebuilt evaluate closure runs end to end.
    metrics = reloaded.evaluate(reloaded.controller.env, 1, 0)
    assert "collision_rate" in metrics


def test_trained_method_requires_controller(tmp_path):
    method = TrainedMethod("hero", None, lambda *a: None)
    with pytest.raises(ValueError, match="no controller"):
        method.to_checkpoint(tmp_path / "x.npz")


def test_table2_persist_and_load_helpers(tmp_path):
    scenario = small_scenario()
    env = make_baseline_env(scenario=scenario)
    algo = make_baseline("idqn", env, seed=2)
    result = ExperimentResult(scenario=scenario)
    result.methods["idqn"] = TrainedMethod(
        "idqn", None, lambda *a: None, controller=algo,
        scenario=scenario, rewards=result.rewards,
    )
    paths = _persist_methods(result, str(tmp_path / "ckpts"))
    assert os.path.exists(paths["idqn"])
    reloaded = _load_methods(str(tmp_path / "ckpts"), ["idqn"])
    assert reloaded is not None
    assert reloaded.scenario == scenario
    assert_state_equal(
        algo.state_dict(), reloaded.methods["idqn"].controller.state_dict()
    )
    # Incomplete directories fall back to training.
    assert _load_methods(str(tmp_path / "ckpts"), ["idqn", "hero"]) is None


def test_public_surface_exports():
    import repro

    for name in (
        "load_policy", "save_checkpoint", "load_checkpoint", "PolicyServer",
        "PolicyClient", "MicroBatcher", "TrainingConfig", "train_hero",
        "HeroTeam", "make_baseline",
    ):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
