"""Tests for track geometry, vehicles and sensors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    Lidar,
    PseudoCamera,
    RingTrack,
    StraightTrack,
    Vehicle,
    feature_dim,
    feature_vector,
    make_track,
)
from repro.utils.math_utils import segment_intersects_circle, wrap_angle


class TestTrack:
    def setup_method(self):
        self.track = StraightTrack(length=20.0, num_lanes=2, lane_width=0.5)

    def test_wrap(self):
        assert self.track.wrap(21.0) == pytest.approx(1.0)
        assert self.track.wrap(-1.0) == pytest.approx(19.0)
        assert self.track.wrap(20.0) == pytest.approx(0.0)

    def test_lane_centers_symmetric(self):
        assert self.track.lane_center(0) == pytest.approx(-0.25)
        assert self.track.lane_center(1) == pytest.approx(0.25)

    def test_lane_of_inverts_lane_center(self):
        for lane in range(2):
            assert self.track.lane_of(self.track.lane_center(lane)) == lane

    def test_lane_of_clamps(self):
        assert self.track.lane_of(-100.0) == 0
        assert self.track.lane_of(100.0) == 1

    def test_signed_gap_shortest_path(self):
        assert self.track.signed_gap(1.0, 19.0) == pytest.approx(-2.0)
        assert self.track.signed_gap(19.0, 1.0) == pytest.approx(2.0)

    def test_forward_gap(self):
        assert self.track.forward_gap(19.0, 1.0) == pytest.approx(2.0)
        assert self.track.forward_gap(1.0, 19.0) == pytest.approx(18.0)

    def test_deviation(self):
        assert self.track.deviation_from_lane_center(-0.25) == pytest.approx(0.0)
        assert self.track.deviation_from_lane_center(0.0, lane_id=0) == pytest.approx(0.25)

    def test_on_road(self):
        assert self.track.on_road(0.49)
        assert not self.track.on_road(0.51)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StraightTrack(length=-1.0)
        with pytest.raises(ValueError):
            StraightTrack(length=1.0, num_lanes=0)
        with pytest.raises(ValueError):
            StraightTrack(length=1.0, lane_width=0.0)
        with pytest.raises(ValueError):
            self.track.lane_center(5)

    def test_make_track_factory(self):
        assert isinstance(make_track("straight", 10.0), StraightTrack)
        assert isinstance(make_track("ring", 10.0), RingTrack)
        with pytest.raises(ValueError):
            make_track("figure8", 10.0)


class TestRingTrack:
    def test_world_positions_on_circle(self):
        track = RingTrack(length=20.0, num_lanes=2, lane_width=0.5)
        point = track.to_world(s=5.0, d=0.0)
        assert np.linalg.norm(point) == pytest.approx(track.radius)

    def test_inner_lane_smaller_radius(self):
        track = RingTrack(length=20.0)
        inner = np.linalg.norm(track.to_world(0.0, track.lane_center(1)))
        outer = np.linalg.norm(track.to_world(0.0, track.lane_center(0)))
        assert inner < outer

    def test_too_small_ring_rejected(self):
        with pytest.raises(ValueError):
            RingTrack(length=1.0, num_lanes=2, lane_width=0.5)

    def test_heading_perpendicular_to_radius(self):
        track = RingTrack(length=20.0)
        for s in [0.0, 3.0, 12.5]:
            heading = track.heading_at(s)
            pos = track.to_world(s, 0.0)
            radial = pos / np.linalg.norm(pos)
            tangent = np.array([np.cos(heading), np.sin(heading)])
            assert abs(np.dot(radial, tangent)) < 1e-9


class TestVehicle:
    def setup_method(self):
        self.track = StraightTrack(20.0)
        self.vehicle = Vehicle(0, self.track)

    def test_reset_places_on_lane_center(self):
        self.vehicle.reset(s=3.0, lane_id=1, speed=0.1)
        assert self.vehicle.state.d == pytest.approx(0.25)
        assert self.vehicle.lane_id == 1
        assert not self.vehicle.crashed

    def test_straight_motion(self):
        self.vehicle.reset(s=0.0, lane_id=0, speed=0.0)
        self.vehicle.apply_action(0.1, 0.0, dt=1.0)
        assert self.vehicle.state.s == pytest.approx(0.1)
        assert self.vehicle.state.d == pytest.approx(-0.25)
        assert self.vehicle.distance_travelled == pytest.approx(0.1)

    def test_turn_changes_lateral(self):
        self.vehicle.reset(s=0.0, lane_id=0, speed=0.0)
        for _ in range(5):
            self.vehicle.apply_action(0.1, 0.2, dt=1.0)
        assert self.vehicle.state.d > -0.25  # drifted left

    def test_speed_clamped(self):
        self.vehicle.reset(s=0.0, lane_id=0)
        self.vehicle.apply_action(10.0, 0.0, dt=1.0)
        assert self.vehicle.state.linear_speed == pytest.approx(
            self.vehicle.max_linear_speed
        )

    def test_crashed_vehicle_frozen(self):
        self.vehicle.reset(s=0.0, lane_id=0)
        self.vehicle.crashed = True
        self.vehicle.apply_action(0.1, 0.0, dt=1.0)
        assert self.vehicle.state.s == pytest.approx(0.0)

    def test_collision_detection(self):
        a = Vehicle(0, self.track, radius=0.12)
        b = Vehicle(1, self.track, radius=0.12)
        a.reset(s=0.0, lane_id=0)
        b.reset(s=0.1, lane_id=0)
        assert a.collides_with(b)
        b.reset(s=1.0, lane_id=0)
        assert not a.collides_with(b)

    def test_collision_across_wrap(self):
        a = Vehicle(0, self.track, radius=0.12)
        b = Vehicle(1, self.track, radius=0.12)
        a.reset(s=19.95, lane_id=0)
        b.reset(s=0.05, lane_id=0)
        assert a.collides_with(b)

    def test_different_lanes_no_collision(self):
        a = Vehicle(0, self.track, radius=0.12)
        b = Vehicle(1, self.track, radius=0.12)
        a.reset(s=0.0, lane_id=0)
        b.reset(s=0.0, lane_id=1)
        assert not a.collides_with(b)

    def test_coast_preserves_speed(self):
        self.vehicle.reset(s=0.0, lane_id=0, speed=0.0)
        self.vehicle.apply_action(0.1, 0.05, dt=1.0)
        heading_before = self.vehicle.state.heading
        self.vehicle.coast(dt=1.0)
        assert self.vehicle.state.linear_speed == pytest.approx(0.1)
        assert self.vehicle.state.heading > heading_before


class TestLidar:
    def setup_method(self):
        self.track = StraightTrack(20.0)
        self.lidar = Lidar(n_beams=16, max_range=3.0)

    def test_empty_road_sees_walls_only(self):
        ego = Vehicle(0, self.track)
        ego.reset(s=10.0, lane_id=0)
        scan = self.lidar.scan(ego, [ego])
        # Forward and backward beams see nothing (1.0); some lateral beams
        # hit the road edge walls.
        assert scan[0] == pytest.approx(1.0)
        assert scan.min() < 1.0

    def test_detects_vehicle_ahead(self):
        ego = Vehicle(0, self.track)
        other = Vehicle(1, self.track, radius=0.12)
        ego.reset(s=10.0, lane_id=0)
        other.reset(s=11.0, lane_id=0)
        scan = self.lidar.scan(ego, [ego, other])
        # Beam 0 points forward: distance 1.0 - radius, normalised by 3.
        assert scan[0] == pytest.approx((1.0 - 0.12) / 3.0, abs=1e-6)

    def test_detects_vehicle_behind(self):
        ego = Vehicle(0, self.track)
        other = Vehicle(1, self.track, radius=0.12)
        ego.reset(s=10.0, lane_id=0)
        other.reset(s=9.0, lane_id=0)
        scan = self.lidar.scan(ego, [ego, other])
        back_beam = 8  # 16 beams, beam 8 = 180 degrees
        assert scan[back_beam] == pytest.approx((1.0 - 0.12) / 3.0, abs=1e-6)

    def test_detects_across_wrap(self):
        ego = Vehicle(0, self.track)
        other = Vehicle(1, self.track, radius=0.12)
        ego.reset(s=19.5, lane_id=0)
        other.reset(s=0.5, lane_id=0)
        scan = self.lidar.scan(ego, [ego, other])
        assert scan[0] == pytest.approx((1.0 - 0.12) / 3.0, abs=1e-6)

    def test_out_of_range_invisible(self):
        ego = Vehicle(0, self.track)
        other = Vehicle(1, self.track)
        ego.reset(s=0.0, lane_id=0)
        other.reset(s=5.0, lane_id=0)
        scan = self.lidar.scan(ego, [ego, other])
        assert scan[0] == pytest.approx(1.0)

    def test_min_beams(self):
        with pytest.raises(ValueError):
            Lidar(n_beams=2)

    def test_scan_normalised(self):
        ego = Vehicle(0, self.track)
        ego.reset(s=0.0, lane_id=0)
        others = []
        for i in range(4):
            v = Vehicle(i + 1, self.track)
            v.reset(s=float(i), lane_id=i % 2)
            others.append(v)
        scan = self.lidar.scan(ego, [ego] + others)
        assert np.all(scan >= 0.0) and np.all(scan <= 1.0)


class TestPseudoCamera:
    def setup_method(self):
        self.track = StraightTrack(20.0)
        self.camera = PseudoCamera(size=16, view_range=2.0)

    def test_shape_and_channels(self):
        ego = Vehicle(0, self.track)
        ego.reset(s=0.0, lane_id=0)
        image = self.camera.capture(ego, [ego])
        assert image.shape == (2, 16, 16)
        assert self.camera.channels == 2

    def test_vehicle_ahead_appears_in_occupancy(self):
        ego = Vehicle(0, self.track)
        other = Vehicle(1, self.track, radius=0.12)
        ego.reset(s=0.0, lane_id=0)
        other.reset(s=1.0, lane_id=0)
        image = self.camera.capture(ego, [ego, other])
        assert image[0].sum() > 0

    def test_vehicle_behind_not_visible(self):
        ego = Vehicle(0, self.track)
        other = Vehicle(1, self.track, radius=0.12)
        ego.reset(s=5.0, lane_id=0)
        other.reset(s=3.0, lane_id=0)
        image = self.camera.capture(ego, [ego, other])
        assert image[0].sum() == 0

    def test_lane_markings_present(self):
        ego = Vehicle(0, self.track)
        ego.reset(s=0.0, lane_id=0)
        image = self.camera.capture(ego, [ego])
        assert image[1].sum() > 0

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            PseudoCamera(size=2)


class TestFeatureVector:
    def setup_method(self):
        self.track = StraightTrack(20.0)

    def test_dimension_matches_helper(self):
        ego = Vehicle(0, self.track)
        ego.reset(s=0.0, lane_id=0)
        features = feature_vector(ego, [ego], self.track)
        assert features.shape == (feature_dim(2),)

    def test_gap_to_leader_encoded(self):
        ego = Vehicle(0, self.track)
        leader = Vehicle(1, self.track)
        ego.reset(s=0.0, lane_id=0, speed=0.1)
        leader.reset(s=1.5, lane_id=0)
        features = feature_vector(ego, [ego, leader], self.track)
        no_leader = feature_vector(ego, [ego], self.track)
        assert features[-3] < no_leader[-3]  # forward gap shrinks

    def test_deviation_sign(self):
        ego = Vehicle(0, self.track)
        ego.reset(s=0.0, lane_id=0)
        ego.state.d += 0.1  # drift left of centre
        features = feature_vector(ego, [ego], self.track)
        assert features[0] > 0


class TestMathHelpers:
    def test_wrap_angle(self):
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)
        assert wrap_angle(-np.pi) == pytest.approx(np.pi)
        assert wrap_angle(0.3) == pytest.approx(0.3)

    def test_segment_circle_hit(self):
        hit = segment_intersects_circle(
            np.array([0.0, 0.0]), np.array([5.0, 0.0]), np.array([2.0, 0.0]), 0.5
        )
        assert hit == pytest.approx(1.5)

    def test_segment_circle_miss(self):
        hit = segment_intersects_circle(
            np.array([0.0, 0.0]), np.array([5.0, 0.0]), np.array([2.0, 2.0]), 0.5
        )
        assert hit is None

    def test_segment_circle_behind(self):
        hit = segment_intersects_circle(
            np.array([0.0, 0.0]), np.array([1.0, 0.0]), np.array([-2.0, 0.0]), 0.5
        )
        assert hit is None


@settings(max_examples=50, deadline=None)
@given(
    s1=st.floats(0, 19.99),
    s2=st.floats(0, 19.99),
)
def test_property_signed_gap_antisymmetric(s1, s2):
    track = StraightTrack(20.0)
    g12 = track.signed_gap(s1, s2)
    g21 = track.signed_gap(s2, s1)
    # Antisymmetric except at the +/- half-length boundary.
    if abs(abs(g12) - 10.0) > 1e-6:
        assert g12 == pytest.approx(-g21, abs=1e-9)
    assert abs(g12) <= 10.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(s=st.floats(-100, 100))
def test_property_wrap_into_range(s):
    track = StraightTrack(20.0)
    assert 0.0 <= track.wrap(s) < 20.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    beams=st.sampled_from([8, 16, 36]),
)
def test_property_lidar_symmetric_setup(seed, beams):
    """Two vehicles equidistant fore/aft produce symmetric front/back beams."""
    rng = np.random.default_rng(seed)
    track = StraightTrack(20.0)
    lidar = Lidar(n_beams=beams, max_range=3.0)
    ego = Vehicle(0, track)
    front = Vehicle(1, track, radius=0.12)
    back = Vehicle(2, track, radius=0.12)
    gap = float(rng.uniform(0.5, 2.5))
    ego.reset(s=10.0, lane_id=0)
    front.reset(s=10.0 + gap, lane_id=0)
    back.reset(s=10.0 - gap, lane_id=0)
    scan = lidar.scan(ego, [ego, front, back])
    assert scan[0] == pytest.approx(scan[beams // 2], abs=1e-9)
