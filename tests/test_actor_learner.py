"""Async actor–learner stack: equivalence, staleness, and lifecycle locks.

The contract under test (``repro.distributed.actor_learner``):

* ``async_actors`` with ``max_staleness=0`` (lockstep barrier) is
  **bit-for-bit** equal to the synchronous vectorized loop — metrics,
  logged steps and final network weights — for HERO (``train_hero``) and
  IDQN (``train_marl_vectorized``), plain and fused;
* ``max_staleness > 0`` runs, logs a per-round snapshot-staleness series
  bounded by the budget, and still produces the full metric set;
* the shared-memory transition queue exerts backpressure: a producer
  that outruns the consumer blocks instead of growing the queue;
* an actor crash — including a shard worker dying inside the actor's
  ``ShardedVectorEnv`` — surfaces as a ``RuntimeError`` naming the
  failing shard, not a hang;
* a finished (or failed) run leaves no orphan processes and unlinks
  every shared-memory segment it created.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.baselines import make_baseline, train_marl_vectorized
from repro.config import ScenarioConfig, TrainingConfig
from repro.core import HeroTeam, train_hero
from repro.distributed import ParameterServer, ShmRingQueue
from repro.distributed import actor_learner
from repro.envs import (
    CooperativeLaneChangeEnv,
    EnvReplicaFactory,
    make_baseline_vector_env,
)

SCENARIO = ScenarioConfig(episode_length=5)


def _hero_run(
    async_actors: bool,
    *,
    fused: bool = False,
    max_staleness: int = 0,
    num_actors: int = 1,
):
    config = TrainingConfig(seed=0)
    config.scenario = SCENARIO
    env = CooperativeLaneChangeEnv(scenario=SCENARIO)
    team = HeroTeam(env, np.random.default_rng(0), batch_size=32)
    logger = train_hero(
        env,
        team,
        episodes=3,
        config=config,
        num_envs=2,
        eval_every=2,
        eval_episodes=2,
        fused_updates=fused,
        async_actors=async_actors,
        max_staleness=max_staleness,
        num_actors=num_actors,
    )
    return logger, team


def _idqn_run(
    async_actors: bool,
    *,
    fused: bool = False,
    max_staleness: int = 0,
    num_actors: int = 1,
):
    vec_env = make_baseline_vector_env(2, scenario=SCENARIO)
    algo = make_baseline("idqn", vec_env, seed=3, batch_size=16, buffer_capacity=500)
    try:
        logger = train_marl_vectorized(
            vec_env,
            algo,
            episodes=4,
            seed=5,
            eval_every=2,
            eval_episodes=2,
            fused_updates=fused,
            async_actors=async_actors,
            max_staleness=max_staleness,
            num_actors=num_actors,
        )
    finally:
        vec_env.close()
    return logger, algo


# The synchronous reference runs are identical for every num_actors case,
# so compute each (method, fused) reference once per test session.
_SYNC_CACHE: dict = {}


def _sync_reference(method: str, fused: bool):
    key = (method, fused)
    if key not in _SYNC_CACHE:
        run = _hero_run if method == "hero" else _idqn_run
        _SYNC_CACHE[key] = run(False, fused=fused)
    return _SYNC_CACHE[key]


def _assert_logs_equal(log_a, log_b):
    assert sorted(log_a.names()) == sorted(log_b.names())
    for name in log_a.names():
        np.testing.assert_array_equal(log_a.steps(name), log_b.steps(name), err_msg=name)
        np.testing.assert_array_equal(
            log_a.values(name), log_b.values(name), err_msg=name
        )


# ----------------------------------------------------------------------
# Lockstep bitwise equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_actors", [1, 2, 3])
@pytest.mark.parametrize("fused", [False, True], ids=["plain", "fused"])
def test_hero_lockstep_matches_sync_bitwise(fused, num_actors):
    log_sync, team_sync = _sync_reference("hero", fused)
    log_async, team_async = _hero_run(True, fused=fused, num_actors=num_actors)
    _assert_logs_equal(log_sync, log_async)
    state_sync, state_async = team_sync.state_dict(), team_async.state_dict()
    assert state_sync.keys() == state_async.keys()
    for key in state_sync:
        np.testing.assert_array_equal(state_sync[key], state_async[key], err_msg=key)


@pytest.mark.parametrize("num_actors", [1, 2, 3])
@pytest.mark.parametrize("fused", [False, True], ids=["plain", "fused"])
def test_idqn_lockstep_matches_sync_bitwise(fused, num_actors):
    log_sync, algo_sync = _sync_reference("idqn", fused)
    log_async, algo_async = _idqn_run(True, fused=fused, num_actors=num_actors)
    _assert_logs_equal(log_sync, log_async)
    for agent in algo_sync.agent_ids:
        for p_sync, p_async in zip(
            algo_sync.q_networks[agent].trunk.parameters(),
            algo_async.q_networks[agent].trunk.parameters(),
        ):
            np.testing.assert_array_equal(p_sync.data, p_async.data, err_msg=agent)


def test_non_idqn_baseline_falls_back_with_warning():
    vec_env = make_baseline_vector_env(2, scenario=SCENARIO)
    algo = make_baseline("coma", vec_env, seed=3)
    try:
        with pytest.warns(RuntimeWarning, match="IDQN only"):
            train_marl_vectorized(
                vec_env, algo, episodes=1, seed=5, eval_every=0, async_actors=True
            )
    finally:
        vec_env.close()


def test_hero_scalar_loop_falls_back_with_warning():
    env = CooperativeLaneChangeEnv(scenario=SCENARIO)
    team = HeroTeam(env, np.random.default_rng(0), batch_size=32)
    config = TrainingConfig(seed=0)
    config.scenario = SCENARIO
    with pytest.warns(RuntimeWarning, match="num_envs > 1"):
        train_hero(
            env,
            team,
            episodes=1,
            config=config,
            num_envs=1,
            eval_every=0,
            async_actors=True,
        )


# ----------------------------------------------------------------------
# Staleness mode + lifecycle (shared run: versions, orphans, shm)
# ----------------------------------------------------------------------
_CREATED_SEGMENTS: list[str] = []


class _RecordingServer(ParameterServer):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        _CREATED_SEGMENTS.append(self._name)


class _RecordingQueue(ShmRingQueue):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        _CREATED_SEGMENTS.append(self._name)


def test_staleness_run_logs_bounded_versions_and_cleans_up(monkeypatch):
    monkeypatch.setattr(actor_learner, "ParameterServer", _RecordingServer)
    monkeypatch.setattr(actor_learner, "ShmRingQueue", _RecordingQueue)
    _CREATED_SEGMENTS.clear()
    before = {proc.pid for proc in mp.active_children()}

    logger, _ = _hero_run(True, max_staleness=2)

    staleness = logger.values("hero/snapshot_staleness")
    assert staleness.size > 0
    assert (staleness >= 0).all() and (staleness <= 2).all()
    rounds = logger.steps("hero/snapshot_staleness")
    assert (np.diff(rounds) > 0).all(), "rounds must be logged monotonically"
    # Staleness mode must not drop episodes: the full metric set is there.
    assert logger.values("hero/episode_reward").size == 3

    after = {proc.pid for proc in mp.active_children()}
    assert after <= before, "async run leaked processes"
    assert len(_CREATED_SEGMENTS) == 2  # parameter server + transition queue
    for name in _CREATED_SEGMENTS:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_idqn_staleness_fanout_partitions_episodes_and_cleans_up(monkeypatch):
    """N=3 staleness fan-out: stride-partitioned collection must still log
    every episode exactly once, keep staleness within budget, produce a
    per-actor series for every collecting actor, and unlink one ring per
    actor plus the parameter server."""
    monkeypatch.setattr(actor_learner, "ParameterServer", _RecordingServer)
    monkeypatch.setattr(actor_learner, "ShmRingQueue", _RecordingQueue)
    _CREATED_SEGMENTS.clear()
    before = {proc.pid for proc in mp.active_children()}

    logger, _ = _idqn_run(True, max_staleness=2, num_actors=3)

    # Episodes 0..3 each logged exactly once, in order.
    np.testing.assert_array_equal(logger.steps("idqn/episode_reward"), np.arange(4))
    aggregate = logger.values("idqn/snapshot_staleness")
    assert aggregate.size > 0
    assert (aggregate >= 0).all() and (aggregate <= 2).all()
    # With episodes=4 and num_envs=2 every actor owns at least one budget
    # episode (universe 6, stride 3), so each must have shipped rounds.
    per_actor = [
        name for name in logger.names() if "snapshot_staleness/actor" in name
    ]
    assert sorted(per_actor) == [
        f"idqn/snapshot_staleness/actor{k}" for k in range(3)
    ]
    assert sum(logger.values(name).size for name in per_actor) == aggregate.size

    after = {proc.pid for proc in mp.active_children()}
    assert after <= before, "async fan-out run leaked processes"
    assert len(_CREATED_SEGMENTS) == 4  # parameter server + one ring per actor
    for name in _CREATED_SEGMENTS:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


def test_hero_staleness_fanout_keeps_full_metric_set():
    """N=2 staleness fan-out for HERO: partitioned collection must not
    drop episodes and every logged staleness stays within budget."""
    logger, _ = _hero_run(True, max_staleness=2, num_actors=2)
    assert logger.values("hero/episode_reward").size == 3
    aggregate = logger.values("hero/snapshot_staleness")
    assert aggregate.size > 0
    assert (aggregate >= 0).all() and (aggregate <= 2).all()
    per_actor = [
        name for name in logger.names() if "snapshot_staleness/actor" in name
    ]
    # Which actors ship depends on scheduling, but every shipped round is
    # attributed to a real actor and the per-actor series partition the
    # aggregate.
    assert per_actor, "no per-actor staleness series logged"
    assert set(per_actor) <= {
        f"hero/snapshot_staleness/actor{k}" for k in range(2)
    }
    assert sum(logger.values(name).size for name in per_actor) == aggregate.size


# ----------------------------------------------------------------------
# Queue backpressure
# ----------------------------------------------------------------------
def _producer_main(queue: ShmRingQueue, frames: int):
    for index in range(frames):
        queue.put(("frame", index, np.zeros(64)))


def test_queue_backpressure_throttles_producer():
    ctx = mp.get_context("spawn")
    # Capacity fits ~2 frames; the producer must block, not overrun.
    queue = ShmRingQueue(capacity=2048, context=ctx)
    producer = ctx.Process(target=_producer_main, args=(queue, 10))
    producer.start()
    try:
        deadline = time.monotonic() + 10.0
        while queue.qsize_bytes() == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        time.sleep(0.3)  # give the producer time to (wrongly) finish
        assert producer.is_alive(), "producer should be blocked on the full ring"
        for index in range(10):
            tag, got, payload = queue.get(timeout=10.0)
            assert (tag, got) == ("frame", index)
            np.testing.assert_array_equal(payload, np.zeros(64))
        producer.join(timeout=10.0)
        assert producer.exitcode == 0
    finally:
        if producer.is_alive():
            producer.terminate()
            producer.join()
        queue.release()


# ----------------------------------------------------------------------
# Crash propagation
# ----------------------------------------------------------------------
class _ExplodingEnv(CooperativeLaneChangeEnv):
    def step(self, actions):
        raise RuntimeError("injected failure")


class _ExplodingFactory:
    """Drop-in for EnvReplicaFactory that builds exploding replicas."""

    def __init__(self, scenario=None, rewards=None, track=None, scripted_policy=None):
        self.scenario = scenario

    def __call__(self):
        return _ExplodingEnv(scenario=self.scenario)


def test_actor_crash_names_failing_shard(monkeypatch):
    monkeypatch.setattr(actor_learner, "EnvReplicaFactory", _ExplodingFactory)
    before = {proc.pid for proc in mp.active_children()}
    config = TrainingConfig(seed=0)
    config.scenario = SCENARIO
    env = CooperativeLaneChangeEnv(scenario=SCENARIO)
    team = HeroTeam(env, np.random.default_rng(0), batch_size=32)
    with pytest.raises(RuntimeError, match=r"envs \[0, 2\).*injected failure"):
        train_hero(
            env,
            team,
            episodes=3,
            config=config,
            num_envs=4,
            num_workers=2,
            eval_every=0,
            async_actors=True,
        )
    after = {proc.pid for proc in mp.active_children()}
    assert after <= before, "failed async run leaked processes"
