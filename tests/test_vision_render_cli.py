"""Tests for the vision pipeline, ASCII renderer, CLI and checkpoints."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.config import ScenarioConfig
from repro.core.hero import HeroTeam
from repro.core.opponent_model import WindowedOpponentModel
from repro.core.vision import VisionEncoder, VisionSACAgent, train_vision_skill
from repro.envs import CooperativeLaneChangeEnv, LaneKeepingEnv
from repro.envs.render import print_episode, render_episode_frames, render_scene


def tiny_scenario():
    return ScenarioConfig(episode_length=6, camera_size=8)


class TestVisionEncoder:
    def test_output_shape(self):
        encoder = VisionEncoder(2, 8, vector_dim=5, out_features=16,
                                rng=np.random.default_rng(0))
        out = encoder(np.zeros((3, 2, 8, 8)), np.zeros((3, 5)))
        assert out.shape == (3, 16)

    def test_gradients_reach_cnn(self):
        encoder = VisionEncoder(2, 8, 5, 16, np.random.default_rng(0))
        out = encoder(np.random.default_rng(1).uniform(size=(2, 2, 8, 8)),
                      np.zeros((2, 5)))
        out.sum().backward()
        conv_params = encoder.cnn.parameters()
        assert any(p.grad is not None and np.abs(p.grad).sum() > 0 for p in conv_params)


class TestVisionSAC:
    def make_agent(self, env):
        return VisionSACAgent(
            image_shape=(2, env.scenario.camera_size, env.scenario.camera_size),
            vector_dim=env.observation_space.dim,
            action_dim=2,
            rng=np.random.default_rng(0),
            action_low=env.action_space.low,
            action_high=env.action_space.high,
            batch_size=8,
            buffer_capacity=200,
        )

    def test_act_within_bounds(self):
        env = LaneKeepingEnv(scenario=tiny_scenario(), max_steps=3)
        agent = self.make_agent(env)
        vector = env.reset(seed=0)
        image = env.observe_image()
        action = agent.act(image, vector)
        assert env.action_space.contains(np.clip(action, env.action_space.low,
                                                 env.action_space.high))

    def test_update_needs_data(self):
        env = LaneKeepingEnv(scenario=tiny_scenario(), max_steps=3)
        agent = self.make_agent(env)
        assert agent.update() is None

    def test_training_loop_runs(self):
        env = LaneKeepingEnv(scenario=tiny_scenario(), max_steps=3)
        agent = self.make_agent(env)
        logger = train_vision_skill(env, agent, episodes=4, seed=0, warmup_steps=4)
        rewards = logger.values("vision_skill/episode_reward")
        assert len(rewards) == 4
        assert np.all(np.isfinite(rewards))

    def test_update_returns_finite_losses(self):
        env = LaneKeepingEnv(scenario=tiny_scenario(), max_steps=4)
        agent = self.make_agent(env)
        train_vision_skill(env, agent, episodes=3, seed=0, warmup_steps=2)
        losses = agent.update()
        assert losses is not None
        assert all(np.isfinite(v) for v in losses.values())


class TestRenderer:
    def test_render_scene_dimensions(self):
        env = CooperativeLaneChangeEnv(scenario=tiny_scenario())
        env.reset(seed=0)
        frame = render_scene(env, width=40)
        lines = frame.split("\n")
        assert len(lines) == 4  # border + 2 lanes + border
        assert all(len(line) == 42 for line in lines)

    def test_vehicles_appear(self):
        env = CooperativeLaneChangeEnv(scenario=tiny_scenario())
        env.reset(seed=0)
        frame = render_scene(env)
        assert "X" in frame  # scripted leader
        assert "0" in frame  # learning vehicle 0

    def test_crashed_vehicle_marker(self):
        env = CooperativeLaneChangeEnv(scenario=tiny_scenario())
        env.reset(seed=0)
        env.vehicle(env.agents[0]).crashed = True
        assert "*" in render_scene(env)

    def test_episode_frames(self):
        env = CooperativeLaneChangeEnv(scenario=tiny_scenario())

        def policy(observations):
            return {agent: np.array([0.05, 0.0]) for agent in env.agents}

        frames = render_episode_frames(env, policy, seed=0)
        assert len(frames) >= 3
        assert frames[-1].startswith("episode:")

    def test_print_episode(self, capsys):
        env = CooperativeLaneChangeEnv(scenario=tiny_scenario())

        def policy(observations):
            return {agent: np.array([0.05, 0.0]) for agent in env.agents}

        print_episode(env, policy, seed=0, every=2)
        out = capsys.readouterr().out
        assert "step 0" in out


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "fig8", "--scale", "0.002"])
        assert args.experiment == "fig8"
        assert args.scale == 0.002

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig7", "fig8", "fig10", "fig11", "table2"):
            assert exp_id in out

    def test_watch_command(self, capsys):
        assert main(["watch", "--seed", "1", "--every", "10"]) == 0
        assert "step 0" in capsys.readouterr().out

    def test_run_fig8_tiny(self, capsys):
        assert main(["run", "fig8", "--scale", "0.001"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 8(a)" in out


class TestTeamCheckpoint:
    def test_save_load_roundtrip(self, tmp_path):
        env = CooperativeLaneChangeEnv(scenario=tiny_scenario())
        team1 = HeroTeam(env, np.random.default_rng(0), batch_size=8)
        env2 = CooperativeLaneChangeEnv(scenario=tiny_scenario())
        team2 = HeroTeam(env2, np.random.default_rng(42), batch_size=8)

        path = tmp_path / "team.npz"
        team1.save(path)
        team2.load(path)

        obs = np.ones(env.high_level_obs_dim)
        for agent_id in env.agents:
            a1 = team1.agents[agent_id].high_level.select_option(obs, explore=False)
            a2 = team2.agents[agent_id].high_level.select_option(obs, explore=False)
            assert a1 == a2
        skill_obs = np.ones(team1.skills.obs_dim)
        np.testing.assert_allclose(
            team1.skills.lane_change.act(skill_obs, deterministic=True),
            team2.skills.lane_change.act(skill_obs, deterministic=True),
        )


class TestWindowedOpponentModel:
    def make(self, window=3):
        return WindowedOpponentModel(
            obs_dim=4, num_options=4, num_opponents=1,
            rng=np.random.default_rng(0), window=window, batch_size=16,
        )

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            self.make(window=0)

    def test_predict_shape(self):
        model = self.make()
        probs = model.predict_probs(np.zeros(4))
        assert probs.shape == (1, 4)

    def test_window_rolls(self):
        model = self.make(window=2)
        model.record(np.full(4, 1.0), np.array([0]))
        model.record(np.full(4, 2.0), np.array([1]))
        window = model.current_window()
        np.testing.assert_array_equal(window[:4], np.full(4, 1.0))
        np.testing.assert_array_equal(window[4:], np.full(4, 2.0))
        model.record(np.full(4, 3.0), np.array([2]))
        window = model.current_window()
        np.testing.assert_array_equal(window[:4], np.full(4, 2.0))

    def test_reset_window(self):
        model = self.make(window=2)
        model.record(np.ones(4), np.array([0]))
        model.reset_window()
        np.testing.assert_array_equal(model.current_window(), np.zeros(8))

    def test_learns_temporal_pattern(self):
        """Opponent's option equals the PREVIOUS state's sign — only a
        windowed model can represent this."""
        model = self.make(window=2)
        rng = np.random.default_rng(1)
        prev_sign = 1.0
        for _ in range(500):
            obs = rng.standard_normal(4)
            option = 0 if prev_sign < 0 else 3
            model.record(obs, np.array([option]))
            prev_sign = obs[0]
        for _ in range(150):
            losses = model.update()
        assert losses["opponent_0_nll"] < 0.6
