"""Unit + property tests for the autodiff engine (repro.nn.tensor).

Correctness strategy: every differentiable op is checked against central
finite differences on random inputs. If these pass, every learner built on
top inherits correct gradients.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, concatenate, stack, where


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = fn(x)
        flat[i] = original - eps
        down = fn(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_unary(op, x: np.ndarray, atol: float = 1e-5) -> None:
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()
    expected = numeric_grad(lambda v: float(op(Tensor(v)).sum().data), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


class TestElementwiseGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.x = self.rng.uniform(-2.0, 2.0, size=(4, 3))

    def test_exp(self):
        check_unary(lambda t: t.exp(), self.x)

    def test_log(self):
        check_unary(lambda t: t.log(), np.abs(self.x) + 0.5)

    def test_sqrt(self):
        check_unary(lambda t: t.sqrt(), np.abs(self.x) + 0.5)

    def test_tanh(self):
        check_unary(lambda t: t.tanh(), self.x)

    def test_sigmoid(self):
        check_unary(lambda t: t.sigmoid(), self.x)

    def test_relu(self):
        # Shift away from the kink where finite differences are undefined.
        x = self.x + np.sign(self.x) * 0.1
        check_unary(lambda t: t.relu(), x)

    def test_leaky_relu(self):
        x = self.x + np.sign(self.x) * 0.1
        check_unary(lambda t: t.leaky_relu(0.1), x)

    def test_softplus(self):
        check_unary(lambda t: t.softplus(), self.x * 3)

    def test_abs(self):
        x = self.x + np.sign(self.x) * 0.1
        check_unary(lambda t: t.abs(), x)

    def test_pow(self):
        check_unary(lambda t: t**3, self.x)

    def test_neg(self):
        check_unary(lambda t: -t, self.x)

    def test_clip(self):
        x = self.x * 2
        # Avoid evaluating exactly at the clip boundary.
        x = x[(np.abs(np.abs(x) - 1.0) > 0.05)]
        check_unary(lambda t: t.clip(-1.0, 1.0), x)


class TestBinaryGradients:
    def setup_method(self):
        self.rng = np.random.default_rng(1)

    def _check_pair(self, op, a, b, atol=1e-5):
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        op(ta, tb).sum().backward()
        ga = numeric_grad(lambda v: float(op(Tensor(v), Tensor(b)).sum().data), a.copy())
        gb = numeric_grad(lambda v: float(op(Tensor(a), Tensor(v)).sum().data), b.copy())
        np.testing.assert_allclose(ta.grad, ga, atol=atol, rtol=1e-4)
        np.testing.assert_allclose(tb.grad, gb, atol=atol, rtol=1e-4)

    def test_add(self):
        self._check_pair(
            lambda a, b: a + b,
            self.rng.standard_normal((3, 4)),
            self.rng.standard_normal((3, 4)),
        )

    def test_add_broadcast(self):
        self._check_pair(
            lambda a, b: a + b,
            self.rng.standard_normal((3, 4)),
            self.rng.standard_normal((4,)),
        )

    def test_sub(self):
        self._check_pair(
            lambda a, b: a - b,
            self.rng.standard_normal((2, 5)),
            self.rng.standard_normal((2, 5)),
        )

    def test_mul_broadcast(self):
        self._check_pair(
            lambda a, b: a * b,
            self.rng.standard_normal((2, 3, 4)),
            self.rng.standard_normal((1, 3, 1)),
        )

    def test_div(self):
        self._check_pair(
            lambda a, b: a / b,
            self.rng.standard_normal((3, 3)),
            self.rng.uniform(0.5, 2.0, size=(3, 3)),
        )

    def test_matmul(self):
        self._check_pair(
            lambda a, b: a @ b,
            self.rng.standard_normal((3, 4)),
            self.rng.standard_normal((4, 2)),
        )

    def test_matmul_batched(self):
        self._check_pair(
            lambda a, b: a @ b,
            self.rng.standard_normal((5, 3, 4)),
            self.rng.standard_normal((5, 4, 2)),
        )

    def test_maximum(self):
        a = self.rng.standard_normal((4, 4))
        b = a + self.rng.choice([-0.5, 0.5], size=(4, 4))
        self._check_pair(lambda x, y: x.maximum(y), a, b)

    def test_minimum(self):
        a = self.rng.standard_normal((4, 4))
        b = a + self.rng.choice([-0.5, 0.5], size=(4, 4))
        self._check_pair(lambda x, y: x.minimum(y), a, b)


class TestReductionsAndShapes:
    def setup_method(self):
        self.rng = np.random.default_rng(2)
        self.x = self.rng.standard_normal((3, 4, 5))

    def test_sum_all(self):
        check_unary(lambda t: t.sum(), self.x)

    def test_sum_axis(self):
        check_unary(lambda t: t.sum(axis=1), self.x)

    def test_sum_keepdims(self):
        check_unary(lambda t: t.sum(axis=(0, 2), keepdims=True), self.x)

    def test_mean(self):
        check_unary(lambda t: t.mean(axis=2), self.x)

    def test_max(self):
        # Perturb so maxima are unique (finite differences break on ties).
        x = self.x + self.rng.uniform(0, 0.01, self.x.shape)
        check_unary(lambda t: t.max(axis=1), x)

    def test_min(self):
        x = self.x + self.rng.uniform(0, 0.01, self.x.shape)
        check_unary(lambda t: t.min(axis=0), x)

    def test_reshape(self):
        check_unary(lambda t: (t.reshape(6, 10) ** 2), self.x)

    def test_transpose(self):
        check_unary(lambda t: t.transpose(2, 0, 1) * 2.0, self.x)

    def test_getitem(self):
        check_unary(lambda t: t[1:, :2] * 3.0, self.x)

    def test_getitem_int_array(self):
        idx = np.array([0, 2, 2])
        check_unary(lambda t: t[idx] * 2.0, self.x)

    def test_gather(self):
        x = self.rng.standard_normal((4, 6))
        idx = self.rng.integers(0, 6, size=(4, 1))
        check_unary(lambda t: t.gather(idx, axis=-1), x)

    def test_squeeze_expand(self):
        x = self.rng.standard_normal((3, 1, 5))
        check_unary(lambda t: t.squeeze(1).expand_dims(0), x)

    def test_concatenate(self):
        a = Tensor(self.rng.standard_normal((2, 3)), requires_grad=True)
        b = Tensor(self.rng.standard_normal((2, 2)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        out.backward(np.ones((2, 5)))
        np.testing.assert_array_equal(a.grad, np.ones((2, 3)))
        np.testing.assert_array_equal(b.grad, np.ones((2, 2)))

    def test_stack(self):
        a = Tensor(self.rng.standard_normal(4), requires_grad=True)
        b = Tensor(self.rng.standard_normal(4), requires_grad=True)
        out = stack([a, b], axis=0) * 2.0
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, 2 * np.ones(4))
        np.testing.assert_array_equal(b.grad, 2 * np.ones(4))

    def test_where(self):
        cond = np.array([[True, False], [False, True]])
        a = Tensor(self.rng.standard_normal((2, 2)), requires_grad=True)
        b = Tensor(self.rng.standard_normal((2, 2)), requires_grad=True)
        where(cond, a, b).sum().backward()
        np.testing.assert_array_equal(a.grad, cond.astype(float))
        np.testing.assert_array_equal(b.grad, (~cond).astype(float))


class TestGraphMechanics:
    def test_grad_accumulates_when_reused(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_detach_stops_gradient(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x.detach() * x
        y.backward()
        np.testing.assert_allclose(x.grad, [2.0])

    def test_no_grad_without_flag(self):
        x = Tensor(np.array([1.0]))
        y = x * 2.0
        y.backward()
        assert x.grad is None

    def test_backward_shape_mismatch_raises(self):
        x = Tensor(np.zeros((2, 2)), requires_grad=True)
        with pytest.raises(ValueError):
            x.backward(np.zeros(3))

    def test_diamond_graph(self):
        # z = a*b where a = x+1, b = x*2 -> dz/dx = b + 2a = 2x + 2x + 2.
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x + 1.0
        b = x * 2.0
        (a * b).backward()
        np.testing.assert_allclose(x.grad, [2 * 3 + 2 * 3 + 2])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y * 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_item_and_repr(self):
        t = Tensor(np.array(1.5), requires_grad=True)
        assert t.item() == 1.5
        assert "requires_grad" in repr(t)

    def test_tensor_exponent_rejected(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            _ = x ** Tensor(np.ones(2))


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 5),
    inner=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 10_000),
)
def test_property_matmul_matches_numeric(rows, inner, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((rows, inner))
    b = rng.standard_normal((inner, cols))
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    ((ta @ tb) ** 2).sum().backward()
    ga = numeric_grad(lambda v: float(((Tensor(v) @ Tensor(b)) ** 2).sum().data), a.copy())
    np.testing.assert_allclose(ta.grad, ga, atol=1e-4, rtol=1e-3)


@settings(max_examples=40, deadline=None)
@given(
    shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
    seed=st.integers(0, 10_000),
)
def test_property_chain_rule_composition(shape, seed):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1.5, 1.5, size=shape)

    def fn(t):
        return (t.tanh() * t.sigmoid() + (t * t)).mean()

    t = Tensor(x.copy(), requires_grad=True)
    fn(t).backward()
    expected = numeric_grad(lambda v: float(fn(Tensor(v)).data), x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=1e-5, rtol=1e-4)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_broadcast_gradients_sum_correctly(seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((3, 4))
    b = rng.standard_normal((4,))
    ta = Tensor(a.copy(), requires_grad=True)
    tb = Tensor(b.copy(), requires_grad=True)
    ((ta * tb) + tb).sum().backward()
    # d/db sum(a*b + b) = sum_rows(a) + 3
    np.testing.assert_allclose(tb.grad, a.sum(axis=0) + 3.0, atol=1e-10)
    np.testing.assert_allclose(ta.grad, np.broadcast_to(b, a.shape), atol=1e-10)
