"""Tests for vectorized greedy evaluation (ISSUE 3).

The contract under test:

* ``evaluate_hero_vectorized`` / ``evaluate_marl_vectorized`` with
  ``num_envs == 1`` are **bit-for-bit** equal to the scalar
  ``evaluate_hero`` / ``evaluate_marl`` for HERO and all four baselines
  (same reset-seed stream, shape-identical greedy network forwards, no
  hidden RNG consumption),
* at ``num_envs > 1`` the evaluators replay the *identical per-episode
  reset-seed stream* — episode ``e`` always gets
  ``episode_reset_seeds(seed, episodes)[e]`` no matter which env runs it
  or in which order episodes finish,
* evaluation has no training side effects: replay buffers, opponent-model
  histories and exploration state are untouched,
* exactly ``episodes`` completed episodes are scored even when the env
  batch is larger than the episode budget.
"""

import numpy as np
import pytest

from repro.baselines import (
    evaluate_marl,
    evaluate_marl_vectorized,
    make_baseline,
    train_marl,
)
from repro.config import ScenarioConfig, TrainingConfig
from repro.core import HeroTeam, train_hero
from repro.core.trainer import evaluate_hero, evaluate_hero_vectorized
from repro.envs import CooperativeLaneChangeEnv, VectorEnv
from repro.envs.wrappers import make_baseline_env, make_baseline_vector_env
from repro.utils.seeding import episode_reset_seeds

BASELINE_NAMES = ["idqn", "coma", "maddpg", "maac"]
METRIC_KEYS = {"episode_reward", "collision_rate", "success_rate", "mean_speed"}


def small_scenario() -> ScenarioConfig:
    return ScenarioConfig(episode_length=8)


def trained_hero(scenario, episodes=2, opponent_mode="model"):
    """A briefly-trained team, so eval runs on non-trivial weights/state."""
    config = TrainingConfig(seed=0)
    config.scenario = scenario
    env = CooperativeLaneChangeEnv(scenario=scenario)
    team = HeroTeam(
        env, np.random.default_rng(0), batch_size=8, opponent_mode=opponent_mode
    )
    train_hero(env, team, episodes=episodes, config=config, eval_every=0)
    return env, team


def trained_baseline(name, scenario, episodes=2):
    kwargs = {"batch_size": 16} if name != "coma" else {}
    env = make_baseline_env(scenario=scenario)
    algo = make_baseline(name, env, seed=3, **kwargs)
    train_marl(env, algo, episodes=episodes, seed=7, eval_every=0)
    return env, algo


class TestBitForBitAtOneEnv:
    """Vectorized eval at num_envs=1 == scalar eval, bit for bit."""

    def test_hero_matches_scalar(self):
        scenario = small_scenario()
        env, team = trained_hero(scenario)
        scalar = evaluate_hero(env, team, episodes=4, seed=11)
        vectorized = evaluate_hero_vectorized(
            VectorEnv(1, scenario=scenario), team, episodes=4, seed=11
        )
        assert set(scalar) == METRIC_KEYS
        assert scalar == vectorized

    @pytest.mark.parametrize("opponent_mode", ["observed", "zeros"])
    def test_hero_matches_scalar_other_opponent_modes(self, opponent_mode):
        """'observed' exercises sync_observed_options (the eval runner must
        see the opponent options training left on the team)."""
        scenario = small_scenario()
        env, team = trained_hero(scenario, opponent_mode=opponent_mode)
        scalar = evaluate_hero(env, team, episodes=3, seed=5)
        vectorized = evaluate_hero_vectorized(
            VectorEnv(1, scenario=scenario), team, episodes=3, seed=5
        )
        assert scalar == vectorized

    @pytest.mark.parametrize("name", BASELINE_NAMES)
    def test_baseline_matches_scalar(self, name):
        scenario = small_scenario()
        env, algo = trained_baseline(name, scenario)
        scalar = evaluate_marl(env, algo, episodes=4, seed=11)
        vectorized = evaluate_marl_vectorized(
            make_baseline_vector_env(1, scenario=scenario), algo, episodes=4, seed=11
        )
        assert set(scalar) == METRIC_KEYS
        assert scalar == vectorized

    def test_hero_runner_reuse_across_calls(self):
        """The interleaved-eval path reuses one runner; state from a
        previous sweep must not leak into the next."""
        from repro.core import BatchedHeroRunner

        scenario = small_scenario()
        env, team = trained_hero(scenario)
        vec = VectorEnv(1, scenario=scenario)
        runner = BatchedHeroRunner(team, vec)
        first = evaluate_hero_vectorized(vec, team, episodes=3, seed=5, runner=runner)
        again = evaluate_hero_vectorized(vec, team, episodes=3, seed=5, runner=runner)
        assert first == again
        assert again == evaluate_hero(env, team, episodes=3, seed=5)

    def test_hero_rejects_foreign_runner(self):
        from repro.core import BatchedHeroRunner

        scenario = small_scenario()
        _, team = trained_hero(scenario, episodes=1)
        vec = VectorEnv(1, scenario=scenario)
        other = VectorEnv(1, scenario=scenario)
        runner = BatchedHeroRunner(team, other)
        with pytest.raises(ValueError, match="different VectorEnv"):
            evaluate_hero_vectorized(vec, team, episodes=1, runner=runner)


class TestSeedStreams:
    """Episode e always evaluates under episode_reset_seeds(seed, n)[e]."""

    def _recorded_seeds(self, monkeypatch, n_envs, episodes, seed, scenario):
        """Run a baseline eval at N>1 and record every seeded reset."""
        recorded = {}
        original_reset = VectorEnv.reset
        original_reset_env = VectorEnv.reset_env

        def recording_reset(self, seeds=None):
            if seeds is not None:
                for i, value in enumerate(seeds):
                    if value is not None:
                        recorded.setdefault(("initial", i), value)
            return original_reset(self, seeds)

        def recording_reset_env(self, i, seed=None):
            if seed is not None:
                recorded[("relaunch", len(recorded))] = seed
            return original_reset_env(self, i, seed=seed)

        monkeypatch.setattr(VectorEnv, "reset", recording_reset)
        monkeypatch.setattr(VectorEnv, "reset_env", recording_reset_env)
        _, algo = trained_baseline("idqn", scenario, episodes=1)
        evaluate_marl_vectorized(
            make_baseline_vector_env(n_envs, scenario=scenario),
            algo,
            episodes=episodes,
            seed=seed,
        )
        return recorded

    def test_seed_stream_at_three_envs_matches_scalar_stream(self, monkeypatch):
        scenario = small_scenario()
        episodes, seed = 6, 13
        recorded = self._recorded_seeds(monkeypatch, 3, episodes, seed, scenario)
        expected = episode_reset_seeds(seed, episodes)
        # Envs 0..2 start episodes 0..2; every relaunch consumes the next
        # episode index in order, so the multiset of seeded resets is
        # exactly the scalar evaluator's stream.
        initial = [recorded[("initial", i)] for i in range(3)]
        np.testing.assert_array_equal(initial, expected[:3])
        relaunches = sorted(
            value for key, value in recorded.items() if key[0] == "relaunch"
        )
        assert sorted(relaunches) == sorted(int(s) for s in expected[3:])

    def test_scalar_evaluators_use_episode_reset_seeds(self, monkeypatch):
        """The scalar evaluators' seeds come from episode_reset_seeds, so
        the vectorized evaluators (which index the same spawn) can replay
        them; drawing from a sequential RNG stream would break this."""
        scenario = small_scenario()
        env, team = trained_hero(scenario, episodes=1)
        recorded = []
        original_reset = CooperativeLaneChangeEnv.reset

        def recording_reset(self, seed=None):
            recorded.append(seed)
            return original_reset(self, seed=seed)

        monkeypatch.setattr(CooperativeLaneChangeEnv, "reset", recording_reset)
        evaluate_hero(env, team, episodes=3, seed=9)
        np.testing.assert_array_equal(recorded, episode_reset_seeds(9, 3))

        recorded.clear()
        benv, algo = trained_baseline("idqn", scenario, episodes=1)
        recorded.clear()  # drop the training resets
        evaluate_marl(benv, algo, episodes=3, seed=9)
        np.testing.assert_array_equal(recorded, episode_reset_seeds(9, 3))


class TestNoTrainingSideEffects:
    def test_hero_eval_leaves_buffers_and_histories_untouched(self):
        scenario = small_scenario()
        env, team = trained_hero(scenario)
        sizes_before = {
            agent_id: (
                len(agent.high_level.buffer),
                len(agent.high_level.opponent_model.history),
            )
            for agent_id, agent in team.agents.items()
        }
        evaluate_hero_vectorized(
            VectorEnv(2, scenario=scenario), team, episodes=3, seed=1
        )
        for agent_id, agent in team.agents.items():
            assert sizes_before[agent_id] == (
                len(agent.high_level.buffer),
                len(agent.high_level.opponent_model.history),
            )

    def test_baseline_eval_leaves_buffers_and_epsilon_untouched(self):
        scenario = small_scenario()
        _, algo = trained_baseline("idqn", scenario)
        algo.epsilon = np.array([0.5, 0.25])  # per-env array from training
        sizes_before = {a: len(b) for a, b in algo.buffers.items()}
        evaluate_marl_vectorized(
            make_baseline_vector_env(3, scenario=scenario), algo, episodes=4, seed=1
        )
        assert {a: len(b) for a, b in algo.buffers.items()} == sizes_before
        np.testing.assert_array_equal(algo.epsilon, [0.5, 0.25])


class TestEpisodeAccounting:
    def test_more_envs_than_episodes_scores_exact_budget(self):
        scenario = small_scenario()
        _, algo = trained_baseline("idqn", scenario, episodes=1)
        vec = make_baseline_vector_env(4, scenario=scenario)
        metrics = evaluate_marl_vectorized(vec, algo, episodes=2, seed=3)
        scalar = evaluate_marl(
            make_baseline_env(scenario=scenario), algo, episodes=2, seed=3
        )
        # Excess envs roll out unscored episodes; the scored set is the
        # scalar evaluator's two episodes exactly.
        assert metrics == scalar

    def test_hero_more_envs_than_episodes(self):
        scenario = small_scenario()
        env, team = trained_hero(scenario, episodes=1)
        metrics = evaluate_hero_vectorized(
            VectorEnv(4, scenario=scenario), team, episodes=2, seed=3
        )
        for value in metrics.values():
            assert np.isfinite(value)
        assert set(metrics) == METRIC_KEYS
