"""Tests for the experiment harnesses (registry, reporting, tiny runs)."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    curve_summary,
    episodes_from_scale,
    print_learning_curves,
    print_metric_table,
    shape_check,
    train_all_methods,
)
from repro.experiments.common import bench_scenario
from repro.experiments.registry import run_experiment


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(EXPERIMENTS) == {"fig7", "fig8", "fig10", "fig11", "table2"}

    def test_entries_have_run_and_report(self):
        for experiment in EXPERIMENTS.values():
            assert callable(experiment.run)
            assert callable(experiment.report)
            assert experiment.title and experiment.workload

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestReporting:
    def test_curve_summary_fields(self):
        summary = curve_summary(np.arange(30, dtype=float))
        assert set(summary) == {"early", "mid", "late", "tail", "final"}
        assert summary["late"] > summary["early"]

    def test_curve_summary_empty(self):
        summary = curve_summary(np.array([]))
        assert all(np.isnan(v) for v in summary.values())

    def test_print_learning_curves_sorted(self, capsys):
        print_learning_curves(
            "panel", {"a": np.array([1.0, 1.0]), "b": np.array([2.0, 2.0])}
        )
        out = capsys.readouterr().out
        assert out.index("b ") < out.index("a ")  # higher late value first

    def test_print_metric_table(self, capsys):
        print_metric_table("t", {"m": {"x": 1.0}}, columns=["x"])
        assert "1.0000" in capsys.readouterr().out

    def test_shape_check_status(self, capsys):
        _, ok = shape_check("desc", True)
        assert ok
        assert "[OK ]" in capsys.readouterr().out
        _, ok = shape_check("desc", False, "why")
        assert not ok
        assert "MISS" in capsys.readouterr().out


class TestCommon:
    def test_episodes_from_scale(self):
        assert episodes_from_scale(1.0) == 14_000
        assert episodes_from_scale(0.01) == 140
        assert episodes_from_scale(1e-9) == 10  # floor

    def test_bench_scenario_matches_table1_length(self):
        assert bench_scenario().episode_length == 30

    def test_train_all_methods_tiny(self):
        """End-to-end smoke: two methods at micro scale."""
        result = train_all_methods(
            scale=0.001, seed=0, methods=["hero", "idqn"], skill_scale=0.001
        )
        assert set(result.methods) == {"hero", "idqn"}
        for name in result.methods:
            rewards = result.series(name, "eval_episode_reward")
            assert len(rewards) > 0
            assert np.all(np.isfinite(rewards))

    def test_series_missing_method_raises(self):
        result = train_all_methods(
            scale=0.001, seed=0, methods=["idqn"], skill_scale=0.001
        )
        with pytest.raises(KeyError):
            result.series("hero", "episode_reward")


class TestFig8Tiny:
    def test_run_and_report(self):
        from repro.experiments.fig8 import report_fig8, run_fig8

        outputs = run_fig8(scale=0.002, seed=0)
        assert len(outputs["a_lane_keeping"]) == episodes_from_scale(0.002)
        checks = report_fig8(outputs)
        assert len(checks) >= 2


class TestFig10Tiny:
    def test_run_collects_nll_curves(self):
        from repro.experiments.fig10 import run_fig10

        result = train_all_methods(
            scale=0.003, seed=0, methods=["hero"], skill_scale=0.002
        )
        outputs = run_fig10(result=result)
        assert len(outputs["curves"]) == 2  # two modeled opponents
        for values in outputs["curves"].values():
            assert np.all(np.isfinite(values))


class TestTable2Tiny:
    def test_rows_cover_methods(self):
        from repro.experiments.table2 import PAPER_ROWS, run_table2

        result = train_all_methods(
            scale=0.001, seed=0, methods=["hero", "idqn"], skill_scale=0.001
        )
        outputs = run_table2(result=result, eval_episodes=2)
        assert set(outputs["rows"]) == {"hero", "idqn"}
        assert set(PAPER_ROWS) == {"hero", "idqn", "coma", "maddpg", "maac"}
        for metrics in outputs["rows"].values():
            assert 0.0 <= metrics["collision_rate"] <= 1.0
