"""Direct tests for the gym-style space classes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import Box, DictSpace, Discrete


class TestBox:
    def test_scalar_bounds_broadcast(self):
        box = Box(0.0, 1.0, shape=(3,))
        assert box.shape == (3,)
        np.testing.assert_array_equal(box.low, np.zeros(3))

    def test_vector_bounds(self):
        box = Box([0.0, -1.0], [1.0, 1.0])
        assert box.dim == 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Box(np.zeros(2), np.zeros(3))

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Box([1.0], [0.0])

    def test_contains(self):
        box = Box(0.0, 1.0, shape=(2,))
        assert box.contains(np.array([0.5, 0.5]))
        assert not box.contains(np.array([1.5, 0.5]))
        assert not box.contains(np.array([0.5]))  # wrong shape

    def test_sample_inside(self):
        box = Box(-2.0, 3.0, shape=(4,))
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert box.contains(box.sample(rng))

    def test_clip(self):
        box = Box(0.0, 1.0, shape=(2,))
        np.testing.assert_array_equal(box.clip([5.0, -5.0]), [1.0, 0.0])

    def test_repr(self):
        assert "Box" in repr(Box(0.0, 1.0, shape=(2,)))


class TestDiscrete:
    def test_contains(self):
        space = Discrete(4)
        assert space.contains(0) and space.contains(3)
        assert not space.contains(4)
        assert not space.contains(-1)
        assert not space.contains("a")

    def test_sample_range(self):
        space = Discrete(5)
        rng = np.random.default_rng(0)
        samples = {space.sample(rng) for _ in range(100)}
        assert samples <= set(range(5))
        assert len(samples) == 5

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_dim_is_n(self):
        assert Discrete(7).dim == 7


class TestDictSpace:
    def make(self):
        return DictSpace({"a": Box(0.0, 1.0, shape=(2,)), "b": Discrete(3)})

    def test_sample_structure(self):
        space = self.make()
        sample = space.sample(np.random.default_rng(0))
        assert set(sample) == {"a", "b"}

    def test_contains_checks_keys_and_values(self):
        space = self.make()
        good = {"a": np.array([0.5, 0.5]), "b": 1}
        assert space.contains(good)
        assert not space.contains({"a": np.array([0.5, 0.5])})  # missing key
        assert not space.contains({**good, "b": 9})  # bad value
        assert not space.contains("not a dict")

    def test_getitem(self):
        space = self.make()
        assert isinstance(space["b"], Discrete)

    def test_repr(self):
        assert "DictSpace" in repr(self.make())


@settings(max_examples=40, deadline=None)
@given(
    low=st.floats(-10, 0),
    span=st.floats(0.1, 10),
    seed=st.integers(0, 1000),
)
def test_property_box_samples_always_contained(low, span, seed):
    box = Box(low, low + span, shape=(3,))
    rng = np.random.default_rng(seed)
    assert box.contains(box.sample(rng))
