"""Tests for the SAC low-level agent, opponent model and high-level agent."""

import numpy as np
import pytest

from repro.config import PaperHyperparameters
from repro.core import (
    HighLevelAgent,
    LANE_CHANGE,
    KEEP_LANE,
    OpponentModel,
    SACAgent,
    SkillLibrary,
    train_skill,
)
from repro.envs import LaneKeepingEnv
from repro.training.replay import OptionTransition


def make_sac(obs_dim=4, **kwargs):
    defaults = dict(
        obs_dim=obs_dim,
        action_dim=2,
        rng=np.random.default_rng(0),
        action_low=np.array([0.0, -0.2]),
        action_high=np.array([0.2, 0.2]),
        batch_size=16,
        buffer_capacity=500,
    )
    defaults.update(kwargs)
    return SACAgent(**defaults)


class TestSACAgent:
    def test_act_within_bounds(self):
        agent = make_sac()
        for _ in range(20):
            action = agent.act(np.zeros(4))
            assert 0.0 <= action[0] <= 0.2
            assert -0.2 <= action[1] <= 0.2

    def test_deterministic_act(self):
        agent = make_sac()
        a1 = agent.act(np.ones(4), deterministic=True)
        a2 = agent.act(np.ones(4), deterministic=True)
        np.testing.assert_array_equal(a1, a2)

    def test_update_requires_data(self):
        agent = make_sac()
        assert agent.update() is None

    def test_update_returns_losses(self):
        agent = make_sac()
        rng = np.random.default_rng(1)
        for _ in range(40):
            agent.observe(
                rng.standard_normal(4), rng.uniform(-0.1, 0.1, 2),
                rng.uniform(-1, 1), rng.standard_normal(4), False,
            )
        losses = agent.update()
        assert set(losses) == {"critic_loss", "actor_loss", "alpha", "entropy"}
        assert np.isfinite(losses["critic_loss"])

    def test_alpha_autotune_moves(self):
        agent = make_sac(auto_alpha=True)
        rng = np.random.default_rng(2)
        for _ in range(40):
            agent.observe(
                rng.standard_normal(4), rng.uniform(-0.1, 0.1, 2),
                0.0, rng.standard_normal(4), False,
            )
        before = agent.alpha
        for _ in range(10):
            agent.update()
        assert agent.alpha != before

    def test_state_dict_roundtrip(self):
        a1, a2 = make_sac(), make_sac(rng=np.random.default_rng(9))
        a2.load_state_dict(a1.state_dict())
        obs = np.ones(4)
        np.testing.assert_allclose(
            a1.act(obs, deterministic=True), a2.act(obs, deterministic=True)
        )

    def test_learns_simple_control(self):
        """SAC should learn to prefer high-reward actions on a bandit-like
        problem: reward = -|action[0] - 0.15|."""
        agent = make_sac(lr=1e-2, batch_size=32)
        obs = np.zeros(4)
        for _ in range(300):
            action = agent.act(obs)
            reward = -abs(action[0] - 0.15) * 10
            agent.observe(obs, action, reward, obs, True)
            agent.update()
        final = agent.act(obs, deterministic=True)
        assert abs(final[0] - 0.15) < 0.05


class TestTrainSkill:
    def test_skill_training_improves_lane_keeping(self):
        env = LaneKeepingEnv(max_steps=10)
        agent = make_sac(obs_dim=env.observation_space.dim,
                         action_low=env.action_space.low,
                         action_high=env.action_space.high,
                         lr=3e-3, batch_size=64)
        logger = train_skill(env, agent, episodes=40, seed=0)
        rewards = logger.values("skill/episode_reward")
        early = rewards[:10].mean()
        late = rewards[-10:].mean()
        assert late > early, f"no improvement: early={early:.3f} late={late:.3f}"

    def test_logger_records_losses(self):
        env = LaneKeepingEnv(max_steps=5)
        agent = make_sac(obs_dim=env.observation_space.dim,
                         action_low=env.action_space.low,
                         action_high=env.action_space.high, batch_size=8)
        logger = train_skill(env, agent, episodes=5, seed=0, warmup_steps=4)
        assert "skill/critic_loss" in logger.names()


class TestSkillLibrary:
    def test_keep_lane_returns_none(self):
        skills = SkillLibrary(obs_dim=6, rng=np.random.default_rng(0))
        assert skills.act(KEEP_LANE, np.zeros(6)) is None

    def test_slow_down_respects_bounds(self):
        skills = SkillLibrary(obs_dim=6, rng=np.random.default_rng(0))
        from repro.core.options import SLOW_DOWN
        for _ in range(10):
            action = skills.act(SLOW_DOWN, np.zeros(6), deterministic=False)
            assert 0.04 <= action[0] <= 0.08
            assert -0.1 <= action[1] <= 0.1

    def test_accelerate_respects_bounds(self):
        skills = SkillLibrary(obs_dim=6, rng=np.random.default_rng(0))
        from repro.core.options import ACCELERATE
        for _ in range(10):
            action = skills.act(ACCELERATE, np.zeros(6), deterministic=False)
            assert 0.08 <= action[0] <= 0.14

    def test_lane_change_angular_magnitude(self):
        skills = SkillLibrary(obs_dim=6, rng=np.random.default_rng(0))
        for _ in range(10):
            action = skills.act(LANE_CHANGE, np.zeros(6), deterministic=False)
            assert 0.10 <= action[0] <= 0.20
            assert 0.12 <= abs(action[1]) <= 0.25

    def test_shared_skill_for_in_lane_options(self):
        from repro.core.options import ACCELERATE, SLOW_DOWN
        skills = SkillLibrary(obs_dim=6, rng=np.random.default_rng(0))
        assert skills.skill_for(SLOW_DOWN) is skills.skill_for(ACCELERATE)
        assert skills.skill_for(LANE_CHANGE) is skills.lane_change

    def test_state_dict_roundtrip(self):
        s1 = SkillLibrary(obs_dim=6, rng=np.random.default_rng(0))
        s2 = SkillLibrary(obs_dim=6, rng=np.random.default_rng(5))
        s2.load_state_dict(s1.state_dict())
        obs = np.ones(6)
        np.testing.assert_allclose(
            s1.lane_change.act(obs, deterministic=True),
            s2.lane_change.act(obs, deterministic=True),
        )


class TestOpponentModel:
    def make_model(self, num_opponents=2, **kwargs):
        return OpponentModel(
            obs_dim=4,
            num_options=4,
            num_opponents=num_opponents,
            rng=np.random.default_rng(0),
            batch_size=32,
            **kwargs,
        )

    def test_predict_shape(self):
        model = self.make_model()
        probs = model.predict_probs(np.zeros(4))
        assert probs.shape == (2, 4)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)

    def test_zero_opponents(self):
        model = self.make_model(num_opponents=0)
        assert model.predict_probs(np.zeros(4)).shape == (0, 4)
        model.record(np.zeros(4), np.array([]))  # no-op
        assert model.update() is None

    def test_record_validates_shape(self):
        model = self.make_model()
        with pytest.raises(ValueError):
            model.record(np.zeros(4), np.array([1, 2, 3]))

    def test_update_requires_history(self):
        model = self.make_model()
        assert model.update() is None

    def test_learns_state_dependent_policy(self):
        """Opponent picks option 0 when obs[0] < 0 else option 3; the model
        should learn this mapping."""
        model = self.make_model(lr=1e-2)
        rng = np.random.default_rng(1)
        for _ in range(400):
            obs = rng.standard_normal(4)
            option = 0 if obs[0] < 0 else 3
            model.record(obs, np.array([option, option]))
        for _ in range(150):
            losses = model.update()
        assert losses["opponent_0_nll"] < 0.4
        neg = model.most_likely(np.array([-2.0, 0, 0, 0]))
        pos = model.most_likely(np.array([2.0, 0, 0, 0]))
        assert neg[0] == 0 and pos[0] == 3

    def test_batched_log_probs(self):
        model = self.make_model()
        obs = np.random.default_rng(0).standard_normal((8, 4))
        log_probs = model.predict_log_probs_batch(obs)
        assert log_probs.shape == (8, 2, 4)
        np.testing.assert_allclose(
            np.exp(log_probs).sum(axis=-1), 1.0, atol=1e-10
        )

    def test_entropy_regulariser_slows_collapse(self):
        """With a large entropy coefficient predictions stay flatter."""
        rng = np.random.default_rng(2)
        sharp = self.make_model(entropy_coef=0.0, lr=1e-2)
        flat = self.make_model(entropy_coef=2.0, lr=1e-2)
        for _ in range(200):
            obs = rng.standard_normal(4)
            sharp.record(obs, np.array([1, 1]))
            flat.record(obs, np.array([1, 1]))
        for _ in range(100):
            sharp.update()
            flat.update()
        obs = np.zeros(4)
        sharp_probs = sharp.predict_probs(obs)[0]
        flat_probs = flat.predict_probs(obs)[0]
        sharp_entropy = -(sharp_probs * np.log(sharp_probs + 1e-12)).sum()
        flat_entropy = -(flat_probs * np.log(flat_probs + 1e-12)).sum()
        assert flat_entropy > sharp_entropy

    def test_state_dict_roundtrip(self):
        m1, m2 = self.make_model(), self.make_model()
        m1.predictors[0].trunk.net[0].weight.data += 0.5
        m2.load_state_dict(m1.state_dict())
        np.testing.assert_allclose(
            m1.predict_probs(np.ones(4)), m2.predict_probs(np.ones(4))
        )


class TestHighLevelAgent:
    def make_agent(self, **kwargs):
        defaults = dict(
            obs_dim=6,
            num_options=4,
            num_opponents=2,
            rng=np.random.default_rng(0),
            hyper=PaperHyperparameters(),
            batch_size=16,
        )
        defaults.update(kwargs)
        return HighLevelAgent(**defaults)

    def _fill_buffer(self, agent, n=50, seed=0):
        rng = np.random.default_rng(seed)
        for _ in range(n):
            agent.store_transition(
                OptionTransition(
                    obs=rng.standard_normal(6),
                    option=int(rng.integers(0, 4)),
                    other_options=rng.integers(0, 4, size=2),
                    reward=float(rng.uniform(-1, 1)),
                    next_obs=rng.standard_normal(6),
                    done=bool(rng.uniform() < 0.1),
                    steps=int(rng.integers(1, 5)),
                )
            )
            agent.record_observation(rng.standard_normal(6), rng.integers(0, 4, 2))

    def test_select_option_in_range(self):
        agent = self.make_agent()
        for _ in range(10):
            option = agent.select_option(np.zeros(6))
            assert 0 <= option < 4

    def test_select_respects_availability(self):
        agent = self.make_agent()
        available = np.array([True, False, False, False])
        for _ in range(20):
            assert agent.select_option(np.zeros(6), available=available) == 0

    def test_epsilon_one_is_uniform_over_available(self):
        agent = self.make_agent()
        available = np.array([False, True, True, False])
        picks = {
            agent.select_option(np.zeros(6), available=available, epsilon=1.0)
            for _ in range(50)
        }
        assert picks <= {1, 2}
        assert len(picks) == 2

    def test_greedy_is_deterministic(self):
        agent = self.make_agent()
        options = {agent.select_option(np.ones(6), explore=False) for _ in range(5)}
        assert len(options) == 1

    def test_update_requires_data(self):
        agent = self.make_agent()
        assert agent.update() is None

    def test_update_returns_losses(self):
        agent = self.make_agent()
        self._fill_buffer(agent)
        losses = agent.update()
        assert "critic_loss" in losses and "actor_loss" in losses
        assert "opponent_0_nll" in losses

    def test_invalid_opponent_mode(self):
        with pytest.raises(ValueError):
            self.make_agent(opponent_mode="psychic")

    def test_zeros_mode_has_no_opponent_losses(self):
        agent = self.make_agent(opponent_mode="zeros")
        self._fill_buffer(agent)
        losses = agent.update()
        assert not any("opponent" in k for k in losses)

    def test_observed_mode_uses_last_options(self):
        agent = self.make_agent(opponent_mode="observed")
        agent.record_observation(np.zeros(6), np.array([3, 1]))
        rep = agent._opponent_rep(np.zeros(6))
        expected = np.zeros(8)
        expected[3] = 1.0  # opponent 0 chose option 3
        expected[4 + 1] = 1.0  # opponent 1 chose option 1
        np.testing.assert_array_equal(rep, expected)

    def test_smdp_discounting_uses_steps(self):
        """gamma^c must appear in the target: transitions with c=1 and c=4
        produce different targets under identical rewards."""
        agent = self.make_agent(batch_size=4)
        rng = np.random.default_rng(0)
        obs = rng.standard_normal(6)
        nxt = rng.standard_normal(6)
        for steps in (1, 4):
            agent.store_transition(
                OptionTransition(obs, 0, np.array([0, 0]), 1.0, nxt, False, steps)
            )
        batch = agent.buffer.sample(2, np.random.default_rng(1))
        discounts = agent.gamma ** batch["steps"]
        assert len(set(np.round(discounts, 8))) >= 1  # sanity: discount computed

    def test_learning_improves_option_choice(self):
        """Option 2 always yields +1, others -1: the actor should converge
        to option 2."""
        agent = self.make_agent(lr=5e-3, batch_size=32, entropy_coef=0.001)
        rng = np.random.default_rng(4)
        obs = np.zeros(6)
        for _ in range(300):
            option = int(rng.integers(0, 4))
            reward = 1.0 if option == 2 else -1.0
            agent.store_transition(
                OptionTransition(obs, option, np.array([0, 0]), reward, obs, False, 1)
            )
            agent.record_observation(obs, np.array([0, 0]))
        for _ in range(200):
            agent.update()
        assert agent.select_option(obs, explore=False) == 2

    def test_state_dict_roundtrip(self):
        a1 = self.make_agent()
        a2 = self.make_agent(rng=np.random.default_rng(7))
        a2.load_state_dict(a1.state_dict())
        assert a1.select_option(np.ones(6), explore=False) == a2.select_option(
            np.ones(6), explore=False
        )
