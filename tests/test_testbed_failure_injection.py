"""Failure-injection tests: the system under degraded conditions.

These verify graceful behaviour at the edges — extreme sensor noise,
total message loss, crashed vehicles mid-episode, saturated buffers —
the conditions a distributed deployment actually hits.
"""

import numpy as np
import pytest

from repro.config import ScenarioConfig, TestbedConfig as ShiftConfig
from repro.core import HeroTeam
from repro.distributed import DistributedObservationService, MessageBus
from repro.envs import CooperativeLaneChangeEnv, RealWorldTestbed
from repro.training.replay import ReplayBuffer


def tiny_env():
    return CooperativeLaneChangeEnv(scenario=ScenarioConfig(episode_length=5))


class TestExtremeNoise:
    def test_huge_sensor_noise_still_runs(self):
        testbed = RealWorldTestbed(tiny_env(), ShiftConfig(sensor_noise_std=10.0), seed=0)
        obs = testbed.reset(seed=0)
        actions = {a: np.array([0.05, 0.0]) for a in testbed.agents}
        for _ in range(5):
            obs, rewards, dones, _ = testbed.step(actions)
            assert all(np.all(np.isfinite(o["lidar"])) for o in obs.values())
            if dones["__all__"]:
                break

    def test_long_actuation_delay(self):
        testbed = RealWorldTestbed(tiny_env(), ShiftConfig(action_delay_steps=4), seed=0)
        testbed.reset(seed=0)
        actions = {a: np.array([0.2, 0.0]) for a in testbed.agents}
        obs, rewards, dones, _ = testbed.step(actions)
        assert set(rewards) == set(testbed.agents)

    def test_hero_team_acts_on_noisy_observations(self):
        env = tiny_env()
        team = HeroTeam(env, np.random.default_rng(0), batch_size=8)
        obs = env.reset(seed=0)
        team.start_episode()
        noisy = {
            agent: {k: v + 5.0 for k, v in o.items()} for agent, o in obs.items()
        }
        actions = team.act(noisy)
        for action in actions.values():
            assert np.all(np.isfinite(action))


class TestTotalMessageLoss:
    def test_opponent_options_stay_at_default(self):
        service = DistributedObservationService(
            ["a", "b"], latency_steps=0, drop_probability=0.999999, seed=0
        )
        for t in range(20):
            service.exchange({"a": (1, np.zeros(2)), "b": (3, np.zeros(2))}, t)
        # With effectively total loss, "a" still reports a default for "b".
        observed = service.observed_options("a")
        assert observed.shape == (1,)
        assert 0 <= observed[0] < 4

    def test_bus_clock_advances_under_loss(self):
        bus = MessageBus(drop_probability=0.9, seed=0)
        bus.register("x")
        for _ in range(10):
            bus.step()
        assert bus.clock == 10


class TestCrashedVehicles:
    def test_crashed_vehicle_ignores_commands(self):
        env = tiny_env()
        env.reset(seed=0)
        vehicle = env.vehicle(env.agents[0])
        vehicle.crashed = True
        s_before = vehicle.state.s
        env.step({a: np.array([0.2, 0.0]) for a in env.agents})
        assert vehicle.state.s == pytest.approx(s_before)

    def test_episode_ends_exactly_once_on_collision(self):
        env = tiny_env()
        env.reset(seed=0)
        v0, v1 = env.vehicle(env.agents[0]), env.vehicle(env.agents[1])
        v1.state.s, v1.state.d = v0.state.s + 0.05, v0.state.d
        _, _, dones, info = env.step({a: np.zeros(2) for a in env.agents})
        assert dones["__all__"]
        assert info["episode"]["collision"] == 1.0


class TestBufferSaturation:
    def test_saturated_buffer_still_samples(self):
        buffer = ReplayBuffer(16, obs_dim=2, action_dim=1)
        for i in range(1000):
            buffer.push([i, i], [0], 0.0, [0, 0], False)
        batch = buffer.sample(8, np.random.default_rng(0))
        assert batch["obs"].shape == (8, 2)
        # All contents are from the most recent window.
        assert np.all(batch["obs"][:, 0] >= 1000 - 16)

    def test_sample_larger_than_size(self):
        buffer = ReplayBuffer(16, obs_dim=1, action_dim=1)
        for i in range(4):
            buffer.push([i], [0], 0.0, [0], False)
        batch = buffer.sample(100, np.random.default_rng(0))
        assert batch["obs"].shape[0] == 4
