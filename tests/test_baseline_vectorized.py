"""Tests for vectorized baseline training (repro.baselines.base).

The contract under test:

* ``train_marl_vectorized`` with ``num_envs == 1`` reproduces the scalar
  ``train_marl`` loop **bit-for-bit** for every baseline — same metric
  names, steps and values (the batched act/observe implementations consume
  the algorithm RNG exactly like their scalar counterparts at one env),
* ``num_envs > 1`` trains correctly (full episode budget, finite metrics,
  in-order logging) through the same interface,
* ``VectorBaselineEnv`` exposes the exact scalar baseline stack — flat
  observation layout and discrete action grid — over a ``VectorEnv``,
* the batched buffer/seed plumbing (``push_batch``,
  ``episode_reset_seeds``) is equivalent to its sequential counterparts.
"""

import numpy as np
import pytest

from repro.baselines import (
    make_baseline,
    train_marl,
    train_marl_vectorized,
)
from repro.config import ScenarioConfig
from repro.envs import (
    DiscreteActionWrapper,
    make_baseline_env,
    make_baseline_vector_env,
)
from repro.envs.wrappers import VectorBaselineEnv
from repro.training.replay import JointReplayBuffer, ReplayBuffer
from repro.utils.seeding import episode_reset_seeds

ALL = ["idqn", "maddpg", "coma", "maac"]


def small_scenario():
    return ScenarioConfig(episode_length=6)


def make_pair(name, num_envs, seed=3):
    """A (scalar env, vector env, fresh algorithm per env) triple."""
    kwargs = {"batch_size": 16} if name != "coma" else {}
    scenario = small_scenario()
    env = make_baseline_env(scenario=scenario)
    vec = make_baseline_vector_env(num_envs, scenario=scenario)
    return env, vec, (
        make_baseline(name, env, seed=seed, **kwargs),
        make_baseline(name, vec, seed=seed, **kwargs),
    )


class TestSeedEquivalence:
    """num_envs=1 vectorized training == scalar training, bit for bit."""

    @pytest.mark.parametrize("name", ALL)
    def test_metrics_identical_to_scalar_loop(self, name):
        env, vec, (algo_scalar, algo_vec) = make_pair(name, num_envs=1)
        log_scalar = train_marl(env, algo_scalar, episodes=5, seed=7)
        log_vec = train_marl_vectorized(vec, algo_vec, episodes=5, seed=7)
        assert log_scalar.names() == log_vec.names()
        for metric in log_scalar.names():
            np.testing.assert_array_equal(
                log_scalar.steps(metric), log_vec.steps(metric), err_msg=metric
            )
            np.testing.assert_array_equal(
                log_scalar.values(metric), log_vec.values(metric), err_msg=metric
            )

    def test_epsilon_final_value_matches_scalar(self):
        env, vec, (algo_scalar, algo_vec) = make_pair("idqn", num_envs=1)
        train_marl(env, algo_scalar, episodes=4, seed=7)
        train_marl_vectorized(vec, algo_vec, episodes=4, seed=7)
        assert algo_vec.epsilon == algo_scalar.epsilon

    @pytest.mark.parametrize("name", ALL)
    def test_act_batch_matches_act_at_one_env(self, name):
        """One batched act == one scalar act from the same RNG state."""
        env, vec, (algo_scalar, algo_vec) = make_pair(name, num_envs=1)
        if hasattr(algo_scalar, "epsilon"):
            algo_scalar.epsilon = algo_vec.epsilon = 0.5
        obs = env.reset(seed=0)
        stacked = np.stack([obs[a] for a in env.agents])[None]
        for _ in range(10):  # several draws so both RNG branches are hit
            scalar_actions = algo_scalar.act(obs, explore=True)
            batch_actions = algo_vec.act_batch(stacked, explore=True)
            assert batch_actions.shape == (1, len(env.agents))
            for k, agent in enumerate(env.agents):
                assert batch_actions[0, k] == scalar_actions[agent]


class TestVectorizedTraining:
    @pytest.mark.parametrize("name", ALL)
    def test_multi_env_training_records_full_budget(self, name):
        _, vec, (_, algo) = make_pair(name, num_envs=3)
        logger = train_marl_vectorized(vec, algo, episodes=8, seed=1)
        for metric in ("episode_reward", "collision_rate", "mean_speed"):
            values = logger.values(f"{name}/{metric}")
            assert len(values) == 8
            assert np.all(np.isfinite(values))
        # Episodes are flushed in index order regardless of completion order.
        np.testing.assert_array_equal(
            logger.steps(f"{name}/episode_reward"), np.arange(8)
        )
        assert len(logger.values(f"{name}/eval_episode_reward")) >= 1

    def test_more_envs_than_episodes(self):
        _, vec, (_, algo) = make_pair("idqn", num_envs=4)
        logger = train_marl_vectorized(vec, algo, episodes=2, seed=1)
        assert len(logger.values("idqn/episode_reward")) == 2

    def test_fallback_config_warns_but_trains(self):
        scenario = ScenarioConfig(episode_length=6)
        vec = make_baseline_vector_env(2, scenario=scenario)
        # Forcing the fallback after construction exercises the guard path.
        vec.vec_env._fast = False
        vec.vec_env._fallback_reason = "forced by test"
        algo = make_baseline("idqn", vec, seed=0, batch_size=16)
        with pytest.warns(RuntimeWarning, match="forced by test"):
            logger = train_marl_vectorized(
                vec, algo, episodes=2, seed=0, eval_every=0
            )
        assert len(logger.values("idqn/episode_reward")) == 2


class TestVectorBaselineEnv:
    def test_observation_layout_matches_scalar_stack(self):
        scenario = small_scenario()
        env = make_baseline_env(scenario=scenario)
        vec = make_baseline_vector_env(2, scenario=scenario)
        assert vec.obs_dim == env.env.obs_dim
        assert vec.num_actions == env.num_actions
        scalar_obs = env.reset(seed=5)
        vec_obs = vec.reset([5, 6])
        assert vec_obs.shape == (2, len(env.agents), vec.obs_dim)
        for k, agent in enumerate(env.agents):
            np.testing.assert_array_equal(vec_obs[0, k], scalar_obs[agent])

    def test_step_matches_scalar_stack(self):
        scenario = small_scenario()
        env = make_baseline_env(scenario=scenario)
        vec = make_baseline_vector_env(2, scenario=scenario)
        env.reset(seed=5)
        vec.reset([5, 6])
        rng = np.random.default_rng(0)
        for _ in range(9):  # crosses the 6-step episode boundary
            actions = rng.integers(0, vec.num_actions, size=(2, vec.num_agents))
            vec_obs, vec_rewards, vec_dones, vec_infos = vec.step(actions)
            obs, rewards, dones, _ = env.step(
                {a: int(actions[0, k]) for k, a in enumerate(env.agents)}
            )
            assert rewards[env.agents[0]] == vec_rewards[0]
            assert dones["__all__"] == vec_dones[0]
            if dones["__all__"]:
                term = vec_infos[0]["terminal_observation"]
                for k, agent in enumerate(env.agents):
                    np.testing.assert_array_equal(term[k], obs[agent])
                obs = env.reset()
            for k, agent in enumerate(env.agents):
                np.testing.assert_array_equal(vec_obs[0, k], obs[agent])

    def test_action_grid_matches_discrete_wrapper(self):
        env = make_baseline_env(scenario=small_scenario())
        vec = make_baseline_vector_env(1, scenario=small_scenario())
        assert isinstance(env, DiscreteActionWrapper)
        np.testing.assert_array_equal(np.stack(env.actions), vec._action_table)

    def test_invalid_actions_rejected(self):
        vec = make_baseline_vector_env(2, scenario=small_scenario())
        vec.reset(0)
        with pytest.raises(ValueError):
            vec.step(np.zeros((1, vec.num_agents), dtype=np.int64))
        with pytest.raises(ValueError):
            vec.step(np.full((2, vec.num_agents), vec.num_actions))

    def test_image_mode_rejected(self):
        from repro.envs import VectorEnv

        scenario = ScenarioConfig(observation_mode="image")
        with pytest.raises(ValueError):
            VectorBaselineEnv(VectorEnv(1, scenario=scenario))


class TestBatchedPlumbing:
    def test_push_batch_equivalent_to_sequential(self):
        rng = np.random.default_rng(0)
        seq, batch = ReplayBuffer(7, 3, 1), ReplayBuffer(7, 3, 1)
        obs = rng.standard_normal((11, 3))
        actions = rng.integers(0, 4, size=(11, 1))
        rewards = rng.standard_normal(11)
        next_obs = rng.standard_normal((11, 3))
        dones = rng.uniform(size=11) < 0.3
        for i in range(11):  # wraps the 7-slot ring
            seq.push(obs[i], actions[i], rewards[i], next_obs[i], dones[i])
        batch.push_batch(obs[:6], actions[:6], rewards[:6], next_obs[:6], dones[:6])
        batch.push_batch(obs[6:], actions[6:], rewards[6:], next_obs[6:], dones[6:])
        assert len(seq) == len(batch) == 7
        for field in ("obs", "actions", "rewards", "next_obs", "dones"):
            np.testing.assert_array_equal(
                getattr(seq, field), getattr(batch, field), err_msg=field
            )
        assert seq._index == batch._index

    def test_joint_push_batch_equivalent_to_sequential(self):
        rng = np.random.default_rng(1)
        seq, batch = JointReplayBuffer(5, 2, 3), JointReplayBuffer(5, 2, 3)
        obs = rng.standard_normal((8, 2, 3))
        actions = rng.integers(0, 4, size=(8, 2))
        rewards = rng.standard_normal((8, 2))
        next_obs = rng.standard_normal((8, 2, 3))
        dones = rng.uniform(size=8) < 0.3
        for i in range(8):
            seq.push(obs[i], actions[i], rewards[i], next_obs[i], dones[i])
        batch.push_batch(obs, actions, rewards, next_obs, dones)
        assert len(seq) == len(batch) == 5
        for field in ("obs", "actions", "rewards", "next_obs", "dones"):
            np.testing.assert_array_equal(
                getattr(seq, field), getattr(batch, field), err_msg=field
            )

    def test_episode_reset_seeds_are_a_pure_function_of_index(self):
        seeds = episode_reset_seeds(9, 20)
        assert len(seeds) == 20
        assert len(set(seeds.tolist())) == 20  # spawn children never collide
        np.testing.assert_array_equal(seeds[:5], episode_reset_seeds(9, 5))
        assert not np.array_equal(seeds, episode_reset_seeds(10, 20))
