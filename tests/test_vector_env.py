"""Tests for the vectorized environment (repro.envs.vector_env).

The contract under test:

* reset/step return stacked arrays with the documented shapes,
* finished environments auto-reset and report their episode summary,
* the fast path agrees **bitwise** with N independent scalar
  ``CooperativeLaneChangeEnv`` instances stepped with the same seeds and
  actions (the vectorized kernels mirror the scalar arithmetic
  elementwise and share the lidar raycast kernel),
* configurations the fast path cannot express fall back to scalar
  stepping with identical results.
"""

import numpy as np
import pytest

from repro.config import ScenarioConfig
from repro.envs import (
    CooperativeLaneChangeEnv,
    LaneKeepingCruiser,
    ScriptedPolicy,
    StationaryObstacle,
    VectorEnv,
)


def random_actions(rng, num_envs, num_agents):
    return rng.uniform([0.0, -0.5], [0.3, 0.5], size=(num_envs, num_agents, 2))


def assert_obs_rows_equal(vec_obs, scalar_obs, env_index, agents):
    for k, agent in enumerate(agents):
        for key, value in scalar_obs[agent].items():
            np.testing.assert_array_equal(
                vec_obs[key][env_index, k],
                value,
                err_msg=f"env {env_index} agent {agent} key {key}",
            )


class TestShapes:
    def setup_method(self):
        self.vec = VectorEnv(3)

    def test_fast_path_active_for_default_config(self):
        assert self.vec.fast_path

    def test_reset_shapes(self):
        obs = self.vec.reset(0)
        cfg = self.vec.scenario
        n, a = 3, cfg.num_learning_vehicles
        assert obs["lidar"].shape == (n, a, cfg.lidar_beams)
        assert obs["speed"].shape == (n, a, 1)
        assert obs["lane_onehot"].shape == (n, a, cfg.num_lanes)
        assert obs["features"].shape[:2] == (n, a)

    def test_step_shapes_and_types(self):
        self.vec.reset(0)
        rng = np.random.default_rng(0)
        obs, rewards, dones, infos = self.vec.step(
            random_actions(rng, 3, self.vec.num_agents)
        )
        assert rewards.shape == (3,)
        assert dones.shape == (3,) and dones.dtype == bool
        assert len(infos) == 3 and all("t" in info for info in infos)
        high = VectorEnv.flatten_high(obs)
        assert high.shape == (3, self.vec.num_agents, self.vec.high_level_obs_dim)
        low = VectorEnv.flatten_low(obs)
        assert low.shape == (3, self.vec.num_agents, self.vec.low_level_obs_dim)

    def test_step_rejects_wrong_shape(self):
        self.vec.reset(0)
        with pytest.raises(ValueError):
            self.vec.step(np.zeros((3, self.vec.num_agents, 3)))
        with pytest.raises(ValueError):
            self.vec.step(np.zeros((2, self.vec.num_agents, 2)))

    def test_unseeded_reset_gives_distinct_envs(self):
        """reset(None) continues per-env RNG streams — they must differ,
        or N parallel envs would collect N copies of the same episode."""
        obs = self.vec.reset()
        assert not np.array_equal(obs["features"][0], obs["features"][1])
        assert not np.array_equal(obs["features"][1], obs["features"][2])

    def test_reset_seed_forms(self):
        obs_int = self.vec.reset(5)
        obs_list = self.vec.reset([5, 6, 7])
        for key in obs_int:
            np.testing.assert_array_equal(obs_int[key], obs_list[key])
        with pytest.raises(ValueError):
            self.vec.reset([1, 2])


class TestScalarAgreement:
    """Bitwise agreement with N independent scalar envs, same seeds."""

    @pytest.mark.parametrize("num_envs", [1, 4])
    def test_bitwise_agreement_with_autoreset(self, num_envs):
        vec = VectorEnv(num_envs)
        assert vec.fast_path
        seeds = [100 + i for i in range(num_envs)]
        scalars = [CooperativeLaneChangeEnv() for _ in range(num_envs)]
        scalar_obs = [env.reset(seed=s) for env, s in zip(scalars, seeds)]
        vec_obs = vec.reset(seeds)
        agents = vec.agents
        for i in range(num_envs):
            assert_obs_rows_equal(vec_obs, scalar_obs[i], i, agents)

        rng = np.random.default_rng(9)
        episodes_seen = 0
        for step in range(120):
            actions = random_actions(rng, num_envs, vec.num_agents)
            vec_obs, vec_rewards, vec_dones, vec_infos = vec.step(actions)
            for i, env in enumerate(scalars):
                action_dict = {
                    agent: actions[i, k] for k, agent in enumerate(agents)
                }
                obs, rewards, dones, info = env.step(action_dict)
                assert rewards[agents[0]] == vec_rewards[i]
                assert dones["__all__"] == vec_dones[i]
                if dones["__all__"]:
                    episodes_seen += 1
                    # Terminal observation and summary must match before the
                    # row is replaced by the autoreset observation.
                    summary = info.get("episode", env.episode_summary())
                    assert vec_infos[i]["episode"] == summary
                    term = vec_infos[i]["terminal_observation"]
                    for k, agent in enumerate(agents):
                        for key, value in obs[agent].items():
                            np.testing.assert_array_equal(term[key][k], value)
                    obs = env.reset()  # scalar mirror of the autoreset
                scalar_obs[i] = obs
                assert_obs_rows_equal(vec_obs, scalar_obs[i], i, agents)
        assert episodes_seen > 0, "rollout never hit an episode boundary"

    def test_post_step_lane_state_matches_scalar(self):
        vec = VectorEnv(2)
        scalar = CooperativeLaneChangeEnv()
        vec.reset([3, 4])
        scalar.reset(seed=3)
        rng = np.random.default_rng(1)
        actions = random_actions(rng, 2, vec.num_agents)
        vec.step(actions)
        scalar.step({a: actions[0, k] for k, a in enumerate(scalar.agents)})
        for k, agent in enumerate(scalar.agents):
            vehicle = scalar.vehicle(agent)
            assert vec.lane_ids[0, k] == vehicle.lane_id
            assert vec.lane_deviation[0, k] == vehicle.lane_deviation


class TestScriptedPolicyKernels:
    """Fast-path eligibility + bitwise parity for the vectorized scripted
    controllers (SlowLeader is covered by TestScalarAgreement)."""

    @pytest.mark.parametrize(
        "make_policy",
        [
            lambda: LaneKeepingCruiser(),
            lambda: LaneKeepingCruiser(target_speed=0.05, safe_gap=1.2),
            lambda: StationaryObstacle(),
        ],
        ids=["cruiser", "cruiser-tuned", "obstacle"],
    )
    @pytest.mark.parametrize("num_scripted", [1, 2])
    def test_bitwise_agreement(self, make_policy, num_scripted):
        scenario = ScenarioConfig(num_scripted_vehicles=num_scripted)
        vec = VectorEnv(
            2,
            env_fns=[
                lambda: CooperativeLaneChangeEnv(
                    scenario=scenario, scripted_policy=make_policy()
                )
                for _ in range(2)
            ],
        )
        assert vec.fast_path, vec.fallback_reason
        scalars = [
            CooperativeLaneChangeEnv(scenario=scenario, scripted_policy=make_policy())
            for _ in range(2)
        ]
        scalar_obs = [env.reset(seed=60 + i) for i, env in enumerate(scalars)]
        vec_obs = vec.reset([60, 61])
        for i in range(2):
            assert_obs_rows_equal(vec_obs, scalar_obs[i], i, vec.agents)
        rng = np.random.default_rng(6)
        for _ in range(70):  # crosses episode boundaries -> autoreset
            actions = random_actions(rng, 2, vec.num_agents)
            vec_obs, vec_rewards, vec_dones, vec_infos = vec.step(actions)
            for i, env in enumerate(scalars):
                obs, rewards, dones, info = env.step(
                    {a: actions[i, k] for k, a in enumerate(env.agents)}
                )
                assert rewards[env.agents[0]] == vec_rewards[i]
                assert dones["__all__"] == vec_dones[i]
                if dones["__all__"]:
                    summary = info.get("episode", env.episode_summary())
                    assert vec_infos[i]["episode"] == summary
                    obs = env.reset()
                assert_obs_rows_equal(vec_obs, obs, i, vec.agents)

    def test_mismatched_policy_params_fall_back(self):
        cruisers = iter([LaneKeepingCruiser(), LaneKeepingCruiser(safe_gap=2.0)])
        vec = VectorEnv(
            2,
            env_fns=[
                lambda: CooperativeLaneChangeEnv(scripted_policy=next(cruisers))
                for _ in range(2)
            ],
        )
        assert not vec.fast_path
        assert "scripted policy parameters" in vec.fallback_reason

    def test_fast_path_reports_no_reason(self):
        assert VectorEnv(2).fallback_reason is None


class _UnvectorizedPolicy(ScriptedPolicy):
    """A scripted controller the fast path has no kernel for."""

    def act(self, vehicle, others):
        return 0.01, 0.0


class TestFallback:
    def test_custom_scripted_policy_uses_fallback(self):
        env_fns = [
            lambda: CooperativeLaneChangeEnv(scripted_policy=_UnvectorizedPolicy())
            for _ in range(2)
        ]
        vec = VectorEnv(2, env_fns=env_fns)
        assert not vec.fast_path
        assert "no vectorized kernel" in vec.fallback_reason

    def test_image_mode_uses_fallback(self):
        scenario = ScenarioConfig(observation_mode="image")
        vec = VectorEnv(2, scenario=scenario)
        assert not vec.fast_path

    def test_fallback_matches_scalar(self):
        scenario = ScenarioConfig(observation_mode="image", episode_length=6)
        vec = VectorEnv(2, scenario=scenario)
        scalar = CooperativeLaneChangeEnv(scenario=scenario)
        vec_obs = vec.reset([11, 12])
        scalar_obs = scalar.reset(seed=11)
        assert_obs_rows_equal(vec_obs, scalar_obs, 0, vec.agents)
        rng = np.random.default_rng(2)
        for _ in range(8):  # crosses the episode boundary -> autoreset
            actions = random_actions(rng, 2, vec.num_agents)
            vec_obs, vec_rewards, vec_dones, _ = vec.step(actions)
            obs, rewards, dones, _ = scalar.step(
                {a: actions[0, k] for k, a in enumerate(scalar.agents)}
            )
            assert rewards[scalar.agents[0]] == vec_rewards[0]
            assert dones["__all__"] == vec_dones[0]
            if dones["__all__"]:
                obs = scalar.reset()
            assert_obs_rows_equal(vec_obs, obs, 0, vec.agents)


class TestResetEnv:
    def test_seeded_single_env_reset_matches_scalar(self):
        vec = VectorEnv(3)
        vec.reset([1, 2, 3])
        scalar = CooperativeLaneChangeEnv()
        expected = scalar.reset(seed=42)
        row = vec.reset_env(1, seed=42)
        for k, agent in enumerate(scalar.agents):
            for key, value in expected[agent].items():
                np.testing.assert_array_equal(row[key][k], value)

    def test_reset_env_updates_stacked_state(self):
        vec = VectorEnv(2)
        vec.reset([1, 2])
        rng = np.random.default_rng(0)
        vec.step(random_actions(rng, 2, vec.num_agents))
        vec.reset_env(0, seed=9)
        scalar = CooperativeLaneChangeEnv()
        scalar.reset(seed=9)
        actions = random_actions(rng, 2, vec.num_agents)
        vec_obs, _, _, _ = vec.step(actions)
        obs, _, _, _ = scalar.step(
            {a: actions[0, k] for k, a in enumerate(scalar.agents)}
        )
        assert_obs_rows_equal(vec_obs, obs, 0, vec.agents)

    def test_out_of_range_index_rejected(self):
        vec = VectorEnv(2)
        with pytest.raises(IndexError):
            vec.reset_env(2)


class TestSyncToEnvs:
    def test_sync_writes_vehicle_state_back(self):
        vec = VectorEnv(2)
        vec.reset([1, 2])
        rng = np.random.default_rng(0)
        for _ in range(3):
            vec.step(random_actions(rng, 2, vec.num_agents))
        vec.sync_to_envs()
        for i, env in enumerate(vec.envs):
            for k, agent in enumerate(env.agents):
                vehicle = env.vehicle(agent)
                assert vehicle.state.s == vec._s[i, k]
                assert vehicle.state.d == vec._d[i, k]
            assert env._t == 3
