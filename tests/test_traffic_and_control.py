"""Tests for scripted traffic, the steering controllers and skill-env traffic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.envs import (
    LaneChangeEnv,
    LaneKeepingCruiser,
    LaneKeepingEnv,
    SlowLeader,
    StationaryObstacle,
    StraightTrack,
    Vehicle,
    lane_change_command,
    lane_change_steer_sign,
    lane_keep_command,
)


@pytest.fixture
def track():
    return StraightTrack(20.0, num_lanes=2, lane_width=0.5)


class TestScriptedPolicies:
    def test_slow_leader_constant_speed(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        policy = SlowLeader(speed=0.02)
        linear, _ = policy.act(vehicle, [vehicle])
        assert linear == 0.02

    def test_slow_leader_steers_back_to_center(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        vehicle.state.d += 0.1  # drifted left of centre
        policy = SlowLeader()
        _, angular = policy.act(vehicle, [vehicle])
        assert angular < 0  # steer right, back toward the lane centre

    def test_cruiser_brakes_behind_leader(self, track):
        ego = Vehicle(0, track)
        leader = Vehicle(1, track)
        ego.reset(s=0.0, lane_id=0, speed=0.08)
        leader.reset(s=0.3, lane_id=0, speed=0.01)
        leader.state.linear_speed = 0.01
        policy = LaneKeepingCruiser(target_speed=0.08, safe_gap=0.6)
        linear, _ = policy.act(ego, [ego, leader])
        assert linear < 0.08

    def test_cruiser_full_speed_when_clear(self, track):
        ego = Vehicle(0, track)
        ego.reset(s=0.0, lane_id=0)
        policy = LaneKeepingCruiser(target_speed=0.08)
        linear, _ = policy.act(ego, [ego])
        assert linear == 0.08

    def test_cruiser_ignores_other_lane(self, track):
        ego = Vehicle(0, track)
        other = Vehicle(1, track)
        ego.reset(s=0.0, lane_id=0)
        other.reset(s=0.3, lane_id=1)
        policy = LaneKeepingCruiser(target_speed=0.08)
        linear, _ = policy.act(ego, [ego, other])
        assert linear == 0.08

    def test_stationary_obstacle(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        assert StationaryObstacle().act(vehicle, [vehicle]) == (0.0, 0.0)


class TestSteeringControllers:
    def test_steer_sign_toward_left_lane(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        assert lane_change_steer_sign(vehicle, target_lane=1) == 1.0

    def test_steer_sign_toward_right_lane(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=1)
        assert lane_change_steer_sign(vehicle, target_lane=0) == -1.0

    def test_counter_steer_near_target(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=1)  # already at target centre
        vehicle.state.heading = 0.5  # but still swung out
        assert lane_change_steer_sign(vehicle, target_lane=1) == -1.0

    def test_command_preserves_magnitude(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        command = lane_change_command(vehicle, 1, linear=0.15, angular_magnitude=-0.2)
        assert command[0] == 0.15
        assert abs(command[1]) == pytest.approx(0.2)

    def test_lane_keep_command_clamped(self, track):
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0)
        vehicle.state.d += 10.0  # absurd error
        command = lane_keep_command(vehicle, 0.08, max_angular=0.1)
        assert abs(command[1]) <= 0.1

    def test_closed_loop_lane_change_converges(self, track):
        """Driving the controller in closed loop completes the merge."""
        vehicle = Vehicle(0, track)
        vehicle.reset(s=0.0, lane_id=0, speed=0.1)
        for _ in range(40):
            command = lane_change_command(vehicle, 1, 0.12, 0.2)
            vehicle.apply_action(command[0], command[1], dt=0.5)
        assert vehicle.lane_id == 1
        assert vehicle.lane_deviation < 0.1


class TestSkillEnvTraffic:
    def test_obstacle_always_spawns_at_probability_one(self):
        env = LaneChangeEnv()  # default obstacle_probability=1.0
        for seed in range(5):
            env.reset(seed=seed)
            assert len(env.obstacles) == 1

    def test_obstacle_never_spawns_at_probability_zero(self):
        env = LaneKeepingEnv(obstacle_probability=0.0)
        for seed in range(5):
            env.reset(seed=seed)
            assert env.obstacles == []

    def test_obstacle_in_start_lane_ahead(self):
        env = LaneChangeEnv()
        env.reset(seed=0)
        obstacle = env.obstacles[0]
        assert obstacle.lane_id == env._start_lane
        gap = env.track.signed_gap(env.ego.state.s, obstacle.state.s)
        assert 0.0 < gap < 2.0

    def test_hitting_obstacle_fails_lane_change(self):
        env = LaneChangeEnv()
        env.reset(seed=0)
        # Teleport the obstacle onto the ego.
        env.obstacles[0].state.s = env.ego.state.s + 0.05
        env.obstacles[0].state.d = env.ego.state.d
        _, reward, done, info = env.step(np.array([0.1, 0.12]))
        assert done and not info["success"]
        assert reward == pytest.approx(env.rewards.lane_change_fail_penalty)

    def test_hitting_obstacle_penalised_in_lane_keeping(self):
        env = LaneKeepingEnv(obstacle_probability=1.0)
        env.reset(seed=0)
        env.obstacles[0].state.s = env.ego.state.s + 0.05
        env.obstacles[0].state.d = env.ego.state.d
        _, reward, done, info = env.step(np.array([0.08, 0.0]))
        assert done and info["crashed"]
        assert reward < env.rewards.collision_penalty / 2

    def test_obstacles_visible_in_features(self):
        env = LaneKeepingEnv(obstacle_probability=1.0)
        obs_with = env.reset(seed=3)
        env_clear = LaneKeepingEnv(obstacle_probability=0.0)
        obs_without = env_clear.reset(seed=3)
        # Forward-gap feature differs when an obstacle is ahead in-lane.
        assert not np.allclose(obs_with[:-1], obs_without[:-1])

    def test_obstacles_advance_each_step(self):
        env = LaneKeepingEnv(obstacle_probability=1.0)
        env.reset(seed=0)
        s_before = env.obstacles[0].state.s
        env.step(np.array([0.05, 0.0]))
        assert env.track.forward_gap(s_before, env.obstacles[0].state.s) > 0


@settings(max_examples=30, deadline=None)
@given(
    start_lane=st.integers(0, 1),
    d_offset=st.floats(-0.2, 0.2),
    heading=st.floats(-0.5, 0.5),
)
def test_property_steer_sign_reduces_tracking_error(start_lane, d_offset, heading):
    """One controller step never increases the desired-heading error."""
    track = StraightTrack(20.0)
    vehicle = Vehicle(0, track)
    vehicle.reset(s=0.0, lane_id=start_lane)
    vehicle.state.d += d_offset
    vehicle.state.heading = heading
    target = 1 - start_lane

    def heading_error():
        target_d = track.lane_center(target)
        desired = float(np.clip(3.0 * (target_d - vehicle.state.d), -0.7, 0.7))
        return abs(desired - vehicle.state.heading)

    before = heading_error()
    sign = lane_change_steer_sign(vehicle, target)
    vehicle.apply_action(0.12, sign * 0.15, dt=0.2)
    # Small step in the commanded direction: error shrinks or stays put
    # (up to the kinematic coupling of d and heading).
    assert heading_error() <= before + 0.12
