"""Tests for the four MARL baselines and their shared training loop."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINES,
    evaluate_marl,
    make_baseline,
    train_marl,
)
from repro.baselines.maac import AttentionCritic
from repro.config import ScenarioConfig
from repro.envs import make_baseline_env


def small_env():
    return make_baseline_env(scenario=ScenarioConfig(episode_length=6))


def make(name, env, **kwargs):
    return make_baseline(name, env, seed=0, **kwargs)


OFF_POLICY = ["idqn", "maddpg", "maac"]
ALL = ["idqn", "maddpg", "maac", "coma"]


class TestRegistry:
    def test_all_baselines_registered(self):
        assert set(BASELINES) == {"idqn", "coma", "maddpg", "maac"}

    def test_unknown_baseline_rejected(self):
        with pytest.raises(ValueError):
            make_baseline("qmix", small_env())

    def test_instantiation_matches_env(self):
        env = small_env()
        for name in ALL:
            algo = make(name, env)
            assert algo.num_agents == len(env.agents)
            assert algo.num_actions == env.num_actions


class TestActObserve:
    @pytest.mark.parametrize("name", ALL)
    def test_act_returns_valid_actions(self, name):
        env = small_env()
        algo = make(name, env)
        obs = env.reset(seed=0)
        actions = algo.act(obs)
        assert set(actions) == set(env.agents)
        for action in actions.values():
            assert 0 <= action < env.num_actions

    @pytest.mark.parametrize("name", ALL)
    def test_greedy_act_deterministic(self, name):
        env = small_env()
        algo = make(name, env)
        if hasattr(algo, "epsilon"):
            algo.epsilon = 0.0
        obs = env.reset(seed=0)
        a1 = algo.act(obs, explore=False)
        a2 = algo.act(obs, explore=False)
        assert a1 == a2

    @pytest.mark.parametrize("name", OFF_POLICY)
    def test_update_requires_data(self, name):
        env = small_env()
        algo = make(name, env, batch_size=16)
        assert algo.update() is None

    def test_coma_update_requires_episode(self):
        env = small_env()
        algo = make("coma", env)
        assert algo.update() is None


def _collect_experience(env, algo, episodes=3, seed=0):
    rng = np.random.default_rng(seed)
    for episode in range(episodes):
        obs = env.reset(seed=int(rng.integers(0, 2**31 - 1)))
        done = False
        while not done:
            actions = algo.act(obs)
            next_obs, rewards, dones, _ = env.step(actions)
            algo.observe(obs, actions, rewards, next_obs, dones)
            obs = next_obs
            done = dones["__all__"]
        algo.end_episode()


class TestUpdates:
    @pytest.mark.parametrize("name", ALL)
    def test_update_returns_finite_losses(self, name):
        env = small_env()
        kwargs = {"batch_size": 16} if name in OFF_POLICY else {}
        algo = make(name, env, **kwargs)
        _collect_experience(env, algo)
        losses = algo.update()
        assert losses is not None
        for key, value in losses.items():
            assert np.isfinite(value), f"{key} not finite"

    def test_idqn_double_q_flag(self):
        env = small_env()
        algo = make("idqn", env, batch_size=16, double_q=False)
        _collect_experience(env, algo)
        assert algo.update() is not None

    def test_idqn_learns_simple_preference(self):
        """Reward action 4 regardless of state -> Q(a=4) should dominate."""
        env = small_env()
        algo = make("idqn", env, batch_size=32, lr=1e-2)
        algo.epsilon = 0.0
        rng = np.random.default_rng(0)
        obs = {a: rng.standard_normal(algo.obs_dim) for a in algo.agent_ids}
        for _ in range(200):
            actions = {a: int(rng.integers(0, 9)) for a in algo.agent_ids}
            rewards = {a: 1.0 if actions[a] == 4 else 0.0 for a in algo.agent_ids}
            algo.observe(obs, actions, rewards, obs, {a: True for a in algo.agent_ids})
            algo.update()
        greedy = algo.act(obs, explore=False)
        assert all(action == 4 for action in greedy.values())

    def test_maddpg_target_nets_move(self):
        env = small_env()
        algo = make("maddpg", env, batch_size=16)
        before = algo.target_critics[0].net[0].weight.data.copy()
        _collect_experience(env, algo)
        for _ in range(5):
            algo.update()
        after = algo.target_critics[0].net[0].weight.data
        assert not np.allclose(before, after)

    def test_coma_counterfactual_baseline_shape(self):
        env = small_env()
        algo = make("coma", env)
        _collect_experience(env, algo, episodes=2)
        losses = algo.update()
        assert "critic_loss" in losses and "actor_loss" in losses

    def test_coma_bounded_pending_episodes(self):
        env = small_env()
        algo = make("coma", env, max_episodes_per_update=2)
        _collect_experience(env, algo, episodes=5)
        assert len(algo._pending_episodes) <= 3


class TestAttentionCritic:
    def test_q_rows_shape(self):
        critic = AttentionCritic(
            num_agents=3, obs_dim=5, num_actions=4, rng=np.random.default_rng(0)
        )
        obs = np.zeros((7, 3, 5))
        actions = np.zeros((7, 3), dtype=np.int64)
        rows = critic(obs, actions)
        assert len(rows) == 3
        assert all(row.shape == (7, 4) for row in rows)

    def test_other_agents_actions_influence_q(self):
        critic = AttentionCritic(
            num_agents=2, obs_dim=3, num_actions=4, rng=np.random.default_rng(0)
        )
        obs = np.random.default_rng(1).standard_normal((1, 2, 3))
        actions_a = np.array([[0, 0]])
        actions_b = np.array([[0, 3]])  # other agent changes action
        q_a = critic(obs, actions_a)[0].data
        q_b = critic(obs, actions_b)[0].data
        assert not np.allclose(q_a, q_b)

    def test_own_action_does_not_influence_own_q_row(self):
        """Agent i's Q row marginalises its own action (per-action output)."""
        critic = AttentionCritic(
            num_agents=2, obs_dim=3, num_actions=4, rng=np.random.default_rng(0)
        )
        obs = np.random.default_rng(1).standard_normal((1, 2, 3))
        q_a = critic(obs, np.array([[0, 2]]))[0].data
        q_b = critic(obs, np.array([[3, 2]]))[0].data
        np.testing.assert_allclose(q_a, q_b)


class TestTrainEvaluate:
    @pytest.mark.parametrize("name", ALL)
    def test_train_marl_records_metrics(self, name):
        env = small_env()
        kwargs = {"batch_size": 16} if name in OFF_POLICY else {}
        algo = make(name, env, **kwargs)
        logger = train_marl(env, algo, episodes=3, seed=0)
        assert len(logger.values(f"{name}/episode_reward")) == 3
        assert f"{name}/collision_rate" in logger.names()

    def test_evaluate_marl_metric_ranges(self):
        env = small_env()
        algo = make("idqn", env, batch_size=16)
        metrics = evaluate_marl(env, algo, episodes=2, seed=0)
        assert 0.0 <= metrics["collision_rate"] <= 1.0
        assert 0.0 <= metrics["success_rate"] <= 1.0
        assert metrics["mean_speed"] >= 0.0

    def test_epsilon_annealed_into_idqn(self):
        env = small_env()
        algo = make("idqn", env, batch_size=16)
        train_marl(env, algo, episodes=4, seed=0, epsilon_start=0.9, epsilon_end=0.1,
                   epsilon_decay_episodes=4)
        assert algo.epsilon < 0.9
