"""Tests for the cooperative lane-change env, skill envs, wrappers, testbed."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    TestbedConfig as ShiftConfig,
    LANE_CHANGE_BOUNDS,
    ScenarioConfig,
)
from repro.envs import (
    CooperativeLaneChangeEnv,
    FlattenObservationWrapper,
    LaneChangeEnv,
    LaneKeepingEnv,
    RealWorldTestbed,
    low_level_obs_dim,
    make_baseline_env,
)


def make_env(**overrides) -> CooperativeLaneChangeEnv:
    scenario = ScenarioConfig(**overrides)
    return CooperativeLaneChangeEnv(scenario=scenario)


def zero_actions(env):
    return {agent: np.array([0.0, 0.0]) for agent in env.agents}


def cruise_actions(env, speed=0.08):
    return {agent: np.array([speed, 0.0]) for agent in env.agents}


class TestCooperativeLaneChangeEnv:
    def test_reset_returns_all_agents(self):
        env = make_env()
        obs = env.reset(seed=0)
        assert set(obs) == set(env.agents)
        assert len(env.agents) == 3

    def test_observation_structure(self):
        env = make_env()
        obs = env.reset(seed=0)
        first = obs[env.agents[0]]
        assert first["lidar"].shape == (env.scenario.lidar_beams,)
        assert first["speed"].shape == (1,)
        assert first["lane_onehot"].sum() == pytest.approx(1.0)
        assert "features" in first

    def test_image_mode_observation(self):
        env = make_env(observation_mode="image")
        obs = env.reset(seed=0)
        cam = obs[env.agents[0]]["camera"]
        assert cam.shape == (2, env.scenario.camera_size, env.scenario.camera_size)

    def test_observation_in_space(self):
        env = make_env()
        obs = env.reset(seed=0)
        for agent in env.agents:
            assert env.observation_spaces[agent].contains(obs[agent])

    def test_step_returns_shared_reward(self):
        env = make_env()
        env.reset(seed=0)
        _, rewards, _, _ = env.step(cruise_actions(env))
        values = list(rewards.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_forward_progress_rewarded(self):
        env = make_env()
        env.reset(seed=0)
        _, rewards_fast, _, _ = env.step(cruise_actions(env, 0.1))
        env.reset(seed=0)
        _, rewards_slow, _, _ = env.step(zero_actions(env))
        agent = env.agents[0]
        assert rewards_fast[agent] > rewards_slow[agent]

    def test_missing_action_raises(self):
        env = make_env()
        env.reset(seed=0)
        with pytest.raises(KeyError):
            env.step({env.agents[0]: np.zeros(2)})

    def test_bad_action_shape_raises(self):
        env = make_env()
        env.reset(seed=0)
        actions = zero_actions(env)
        actions[env.agents[0]] = np.zeros(3)
        with pytest.raises(ValueError):
            env.step(actions)

    def test_episode_terminates_at_length(self):
        env = make_env(episode_length=5)
        env.reset(seed=0)
        done = False
        steps = 0
        while not done:
            _, _, dones, _ = env.step(zero_actions(env))
            done = dones["__all__"]
            steps += 1
            assert steps <= 5
        assert steps == 5

    def test_collision_ends_episode_with_penalty(self):
        env = make_env()
        env.reset(seed=0)
        # Force two learning vehicles onto the same spot.
        v0 = env.vehicle(env.agents[0])
        v1 = env.vehicle(env.agents[1])
        v1.state.s = v0.state.s + 0.05
        v1.state.d = v0.state.d
        _, rewards, dones, info = env.step(zero_actions(env))
        assert dones["__all__"]
        assert env.agents[0] in info["collisions"]
        assert rewards[env.agents[0]] < 0
        assert info["episode"]["collision"] == 1.0

    def test_blocked_agents_start_in_lane_zero(self):
        env = make_env()
        env.reset(seed=0)
        for agent in env.agents:
            vehicle = env.vehicle(agent)
            if agent in env._blocked_agents:
                assert vehicle.lane_id == 0

    def test_merge_detection(self):
        env = make_env()
        env.reset(seed=0)
        blocked = sorted(env._blocked_agents)[0]
        vehicle = env.vehicle(blocked)
        # Teleport to an empty stretch of the free lane.
        vehicle.state.d = env.track.lane_center(1)
        vehicle.state.s = env.track.wrap(vehicle.state.s + 10.0)
        _, _, _, info = env.step(zero_actions(env))
        assert info["agents"][blocked]["merged"]

    def test_episode_summary_metrics(self):
        env = make_env(episode_length=3)
        env.reset(seed=0)
        done = False
        while not done:
            _, _, dones, info = env.step(cruise_actions(env))
            done = dones["__all__"]
        summary = info["episode"]
        assert set(summary) == {
            "episode_reward",
            "collision",
            "merge_success_rate",
            "mean_speed",
            "length",
        }
        assert summary["mean_speed"] > 0

    def test_scripted_leader_crawls(self):
        env = make_env()
        env.reset(seed=0)
        leader = env._scripted[0]
        s_before = leader.state.s
        env.step(zero_actions(env))
        gap = env.track.signed_gap(s_before, leader.state.s)
        assert 0 < gap <= env.scenario.scripted_speed * env.scenario.dt + 1e-9

    def test_determinism_same_seed(self):
        env1, env2 = make_env(), make_env()
        obs1, obs2 = env1.reset(seed=42), env2.reset(seed=42)
        for agent in env1.agents:
            np.testing.assert_array_equal(obs1[agent]["lidar"], obs2[agent]["lidar"])

    def test_high_low_flatten_helpers(self):
        env = make_env()
        obs = env.reset(seed=0)
        first = obs[env.agents[0]]
        high = CooperativeLaneChangeEnv.flatten_high(first)
        assert high.shape == (env.high_level_obs_dim,)
        low = CooperativeLaneChangeEnv.flatten_low(first)
        assert low.shape == (env.low_level_obs_dim,)


class TestLaneKeepingEnv:
    def test_reset_perturbs_position(self):
        env = LaneKeepingEnv()
        env.reset(seed=0)
        assert env.ego.lane_deviation >= 0.0

    def test_centering_rewarded_over_drifting(self):
        env = LaneKeepingEnv()
        env.reset(seed=1)
        env.ego.state.d = env.track.lane_center(env.ego.lane_id)
        env.ego.state.heading = 0.0
        _, r_center, _, _ = env.step(np.array([0.08, 0.0]))
        env.reset(seed=1)
        env.ego.state.d = env.track.lane_center(env.ego.lane_id)
        env.ego.state.heading = 0.0
        _, r_swerve, _, _ = env.step(np.array([0.08, 0.4]))
        assert r_center > r_swerve

    def test_episode_length_respected(self):
        env = LaneKeepingEnv(max_steps=4)
        env.reset(seed=0)
        for i in range(4):
            _, _, done, _ = env.step(np.array([0.05, 0.0]))
        assert done

    def test_off_road_penalised_and_terminal(self):
        env = LaneKeepingEnv()
        env.reset(seed=0)
        env.ego.state.d = env.track.half_width + 0.1
        _, reward, done, info = env.step(np.array([0.05, 0.0]))
        assert done and info["off_road"] and reward < 0

    def test_observation_dim(self):
        env = LaneKeepingEnv()
        obs = env.reset(seed=0)
        assert obs.shape == (low_level_obs_dim(env.scenario),)
        assert obs[-1] == 0.0  # no merge direction for in-lane skill


class TestLaneChangeEnv:
    def test_success_gives_bonus(self):
        env = LaneChangeEnv()
        env.reset(seed=0)
        env.ego.state.d = env.track.lane_center(env._target_lane)
        env.ego.state.heading = 0.0
        _, reward, done, info = env.step(np.array([0.15, 0.0]))
        assert done and info["success"]
        assert reward == pytest.approx(env.rewards.lane_change_success_reward)

    def test_timeout_gives_penalty(self):
        env = LaneChangeEnv(max_steps=2)
        env.reset(seed=0)
        env.step(np.array([0.1, 0.0]))
        # Hold the vehicle so it cannot reach the target lane.
        env.ego.state.d = env.track.lane_center(env._start_lane)
        _, reward, done, info = env.step(np.array([0.1, 0.0]))
        assert done and not info["success"]
        assert reward == pytest.approx(env.rewards.lane_change_fail_penalty)

    def test_direction_flag_in_observation(self):
        env = LaneChangeEnv()
        obs = env.reset(seed=3)
        assert obs[-1] in (-1.0, 1.0)

    def test_steering_moves_toward_target(self):
        env = LaneChangeEnv()
        env.reset(seed=0)
        target_d = env.track.lane_center(env._target_lane)
        before = abs(env.ego.state.d - target_d)
        for _ in range(4):
            _, _, done, _ = env.step(np.array([0.15, 0.2]))
            if done:
                break
        after = abs(env.ego.state.d - target_d)
        assert after < before

    def test_default_bounds_match_paper(self):
        env = LaneChangeEnv()
        np.testing.assert_allclose(
            env.action_space.low, LANE_CHANGE_BOUNDS.as_arrays()[0]
        )
        np.testing.assert_allclose(
            env.action_space.high, LANE_CHANGE_BOUNDS.as_arrays()[1]
        )

    def test_policy_can_complete_change(self):
        """The scripted optimal behaviour completes within the step budget,
        so the skill is learnable."""
        env = LaneChangeEnv()
        env.reset(seed=7)
        done, success = False, False
        steps = 0
        while not done:
            _, _, done, info = env.step(np.array([0.15, 0.25]))
            success = info["success"]
            steps += 1
        assert success, f"scripted lane change failed after {steps} steps"


class TestWrappers:
    def test_flatten_wrapper_shapes(self):
        env = FlattenObservationWrapper(CooperativeLaneChangeEnv())
        obs = env.reset(seed=0)
        for agent in env.agents:
            assert obs[agent].shape == (env.obs_dim,)

    def test_flatten_wrapper_requires_features(self):
        base = CooperativeLaneChangeEnv(
            scenario=ScenarioConfig(observation_mode="image")
        )
        with pytest.raises(ValueError):
            FlattenObservationWrapper(base)

    def test_discrete_wrapper_grid(self):
        env = make_baseline_env()
        assert env.num_actions == 9
        obs = env.reset(seed=0)
        actions = {agent: 4 for agent in env.agents}  # mid linear, zero angular
        next_obs, rewards, dones, info = env.step(actions)
        assert set(next_obs) == set(obs)

    def test_discrete_action_mapping(self):
        env = make_baseline_env()
        env.reset(seed=0)
        actions = {agent: 0 for agent in env.agents}
        env.step(actions)
        inner = env.env.env  # unwrap to the base env
        for agent in env.agents:
            assert inner.vehicle(agent).state.linear_speed == pytest.approx(0.02)


class TestRealWorldTestbed:
    def test_noise_applied_to_observations(self):
        base = CooperativeLaneChangeEnv()
        testbed = RealWorldTestbed(base, ShiftConfig(sensor_noise_std=0.5), seed=0)
        obs = testbed.reset(seed=0)
        # With huge noise, the one-hot lane vector will not be exactly 0/1.
        lane = obs[testbed.agents[0]]["lane_onehot"]
        assert not np.all(np.isin(lane, [0.0, 1.0]))

    def test_action_delay(self):
        base = CooperativeLaneChangeEnv()
        testbed = RealWorldTestbed(
            base,
            ShiftConfig(
                sensor_noise_std=0.0,
                action_delay_steps=1,
                speed_scale_range=(1.0, 1.0),
                heading_drift_std=0.0,
                initial_position_jitter=0.0,
            ),
            seed=0,
        )
        testbed.reset(seed=0)
        actions = {agent: np.array([0.2, 0.0]) for agent in testbed.agents}
        testbed.step(actions)
        # First commanded action was delayed; vehicles executed the zero
        # command from the buffer.
        for agent in testbed.agents:
            assert base.vehicle(agent).state.linear_speed == pytest.approx(0.0)
        testbed.step({agent: np.array([0.0, 0.0]) for agent in testbed.agents})
        for agent in testbed.agents:
            assert base.vehicle(agent).state.linear_speed == pytest.approx(0.2)

    def test_speed_scale_range(self):
        base = CooperativeLaneChangeEnv()
        testbed = RealWorldTestbed(
            base,
            ShiftConfig(speed_scale_range=(0.5, 0.5), action_delay_steps=0,
                          sensor_noise_std=0.0, heading_drift_std=0.0,
                          initial_position_jitter=0.0),
            seed=0,
        )
        testbed.reset(seed=0)
        testbed.step({agent: np.array([0.2, 0.0]) for agent in testbed.agents})
        for agent in testbed.agents:
            assert base.vehicle(agent).state.linear_speed == pytest.approx(0.1)

    def test_summary_passthrough(self):
        base = CooperativeLaneChangeEnv()
        testbed = RealWorldTestbed(base, seed=0)
        testbed.reset(seed=0)
        testbed.step({agent: np.array([0.1, 0.0]) for agent in testbed.agents})
        assert "mean_speed" in testbed.episode_summary()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_no_spontaneous_collision_at_reset(seed):
    env = make_env()
    env.reset(seed=seed)
    assert env.detect_collision_pairs() == []


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_rewards_bounded(seed):
    env = make_env(episode_length=6)
    env.reset(seed=seed)
    rng = np.random.default_rng(seed)
    done = False
    while not done:
        actions = {
            agent: env.action_spaces[agent].sample(rng) for agent in env.agents
        }
        _, rewards, dones, _ = env.step(actions)
        done = dones["__all__"]
        for value in rewards.values():
            assert -25.0 <= value <= 25.0
