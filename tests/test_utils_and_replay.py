"""Tests for utilities (schedules, math, logging) and replay buffers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.training.replay import (
    JointReplayBuffer,
    ObservationHistoryBuffer,
    OptionReplayBuffer,
    OptionTransition,
    PrioritizedReplayBuffer,
    ReplayBuffer,
)
from repro.utils import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
    MetricLogger,
    PiecewiseSchedule,
    clamp,
    discounted_returns,
    explained_variance,
    format_table,
    make_rng,
    moving_average,
    spawn_rngs,
)
from repro.utils.seeding import child_rng


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.5)
        assert schedule(0) == schedule(1000) == 0.5

    def test_linear_endpoints(self):
        schedule = LinearSchedule(1.0, 0.1, 100)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.1)
        assert schedule(1000) == pytest.approx(0.1)
        assert schedule(50) == pytest.approx(0.55)

    def test_linear_invalid_duration(self):
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0, 0)

    def test_exponential_floor(self):
        schedule = ExponentialSchedule(1.0, 0.05, 0.9)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10_000) == pytest.approx(0.05)

    def test_exponential_invalid_decay(self):
        with pytest.raises(ValueError):
            ExponentialSchedule(1.0, 0.0, 1.5)

    def test_piecewise(self):
        schedule = PiecewiseSchedule([(0, 0.0), (10, 1.0), (20, 0.0)])
        assert schedule(5) == pytest.approx(0.5)
        assert schedule(15) == pytest.approx(0.5)
        assert schedule(-5) == 0.0
        assert schedule(25) == 0.0

    def test_piecewise_validation(self):
        with pytest.raises(ValueError):
            PiecewiseSchedule([(0, 1.0)])
        with pytest.raises(ValueError):
            PiecewiseSchedule([(10, 1.0), (0, 0.0)])

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(1.0, 0.0, 100)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.0)
        assert 0.4 < schedule(50) < 0.6


class TestMathUtils:
    def test_clamp(self):
        assert clamp(5.0, 0.0, 1.0) == 1.0
        assert clamp(-5.0, 0.0, 1.0) == 0.0
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_moving_average_constant(self):
        np.testing.assert_allclose(moving_average([2.0] * 5, 3), 2.0)

    def test_moving_average_head(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_moving_average_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_moving_average_empty(self):
        assert moving_average([], 3).size == 0

    def test_discounted_returns(self):
        returns = discounted_returns([1.0, 1.0, 1.0], 0.5)
        np.testing.assert_allclose(returns, [1.75, 1.5, 1.0])

    def test_explained_variance_perfect(self):
        targets = np.array([1.0, 2.0, 3.0])
        assert explained_variance(targets, targets) == pytest.approx(1.0)

    def test_explained_variance_zero_var(self):
        assert explained_variance(np.zeros(3), np.ones(3)) == 0.0


class TestSeeding:
    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [rng.integers(0, 1_000_000) for rng in rngs]
        assert len(set(draws)) == 3

    def test_spawn_rngs_reproducible(self):
        a = [rng.integers(0, 100) for rng in spawn_rngs(7, 2)]
        b = [rng.integers(0, 100) for rng in spawn_rngs(7, 2)]
        assert a == b

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_child_rng_deterministic(self):
        a = child_rng(make_rng(0)).integers(0, 1000)
        b = child_rng(make_rng(0)).integers(0, 1000)
        assert a == b


class TestMetricLogger:
    def test_log_and_read(self):
        logger = MetricLogger()
        logger.log("loss", 1.0, 0)
        logger.log("loss", 0.5, 1)
        np.testing.assert_array_equal(logger.values("loss"), [1.0, 0.5])
        np.testing.assert_array_equal(logger.steps("loss"), [0, 1])

    def test_latest_and_default(self):
        logger = MetricLogger()
        assert np.isnan(logger.latest("missing"))
        logger.log("x", 3.0, 0)
        assert logger.latest("x") == 3.0

    def test_window_mean(self):
        logger = MetricLogger()
        for i in range(10):
            logger.log("x", float(i), i)
        assert logger.window_mean("x", 2) == pytest.approx(8.5)

    def test_save_load_roundtrip(self, tmp_path):
        logger = MetricLogger()
        logger.log_many({"a": 1.0, "b": 2.0}, 0)
        path = tmp_path / "metrics.json"
        logger.save(path)
        loaded = MetricLogger.load(path)
        assert loaded.names() == ["a", "b"]
        assert loaded.latest("a") == 1.0

    def test_format_table_alignment(self):
        table = format_table(["name", "val"], [["x", 1.0], ["longer", 2.5]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert "longer" in lines[3]


class TestReplayBuffer:
    def test_push_and_sample(self):
        buffer = ReplayBuffer(10, obs_dim=3, action_dim=2)
        for i in range(5):
            buffer.push(np.full(3, i), np.zeros(2), float(i), np.full(3, i + 1), False)
        batch = buffer.sample(3, np.random.default_rng(0))
        assert batch["obs"].shape == (3, 3)
        assert len(buffer) == 5

    def test_ring_overwrite(self):
        buffer = ReplayBuffer(3, obs_dim=1, action_dim=1)
        for i in range(5):
            buffer.push([i], [0], 0.0, [0], False)
        assert len(buffer) == 3
        stored = set(buffer.obs[:, 0].tolist())
        assert stored == {2.0, 3.0, 4.0}

    def test_empty_sample_raises(self):
        buffer = ReplayBuffer(4, 1, 1)
        with pytest.raises(ValueError):
            buffer.sample(1, np.random.default_rng(0))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 1, 1)

    def test_storage_is_float32_by_default(self):
        """A 100k-capacity buffer must not allocate float64 (2x memory)."""
        buffer = ReplayBuffer(10, obs_dim=3, action_dim=2)
        for name in ("obs", "actions", "rewards", "next_obs", "dones"):
            assert getattr(buffer, name).dtype == np.float32, name
        buffer.push(np.ones(3), np.zeros(2), 1.0, np.ones(3), False)
        batch = buffer.sample(1, np.random.default_rng(0))
        assert batch["obs"].dtype == np.float32

    def test_dtype_override(self):
        buffer = ReplayBuffer(4, 1, 1, dtype=np.float64)
        assert buffer.obs.dtype == np.float64

    def test_prioritized_inherits_float32(self):
        buffer = PrioritizedReplayBuffer(8, 2, 1)
        assert buffer.obs.dtype == np.float32


class TestPrioritizedReplay:
    def test_weights_returned(self):
        buffer = PrioritizedReplayBuffer(16, 2, 1)
        for i in range(8):
            buffer.push([i, 0], [0], 0.0, [0, 0], False)
        batch = buffer.sample(4, np.random.default_rng(0))
        assert "weights" in batch and "indices" in batch
        assert np.all(batch["weights"] <= 1.0 + 1e-12)

    def test_priority_update_biases_sampling(self):
        buffer = PrioritizedReplayBuffer(8, 1, 1, alpha=1.0)
        for i in range(8):
            buffer.push([i], [0], 0.0, [0], False)
        # Give index 3 overwhelming priority.
        buffer.update_priorities(np.arange(8), np.full(8, 1e-6))
        buffer.update_priorities(np.array([3]), np.array([100.0]))
        batch = buffer.sample(64, np.random.default_rng(0))
        freq = np.mean(batch["obs"][:, 0] == 3)
        assert freq > 0.8


class TestOptionReplay:
    def _transition(self, steps=2):
        return OptionTransition(
            obs=np.zeros(4),
            option=1,
            other_options=np.array([0, 2]),
            reward=1.5,
            next_obs=np.ones(4),
            done=False,
            steps=steps,
        )

    def test_push_sample(self):
        buffer = OptionReplayBuffer(8, obs_dim=4, num_opponents=2)
        for _ in range(4):
            buffer.push(self._transition())
        batch = buffer.sample(2, np.random.default_rng(0))
        assert batch["other_options"].shape == (2, 2)
        assert np.all(batch["steps"] == 2)

    def test_empty_sample_raises(self):
        buffer = OptionReplayBuffer(4, 2, 1)
        with pytest.raises(ValueError):
            buffer.sample(1, np.random.default_rng(0))


class TestJointAndHistoryBuffers:
    def test_joint_replay_shapes(self):
        buffer = JointReplayBuffer(8, num_agents=3, obs_dim=4)
        buffer.push(np.zeros((3, 4)), np.zeros(3, dtype=int), np.zeros(3), np.zeros((3, 4)), False)
        batch = buffer.sample(1, np.random.default_rng(0))
        assert batch["obs"].shape == (1, 3, 4)
        assert batch["rewards"].shape == (1, 3)

    def test_history_buffer(self):
        buffer = ObservationHistoryBuffer(4, obs_dim=2, num_opponents=2)
        buffer.push(np.zeros(2), np.array([1, 3]))
        batch = buffer.sample(1, np.random.default_rng(0))
        np.testing.assert_array_equal(batch["options"][0], [1, 3])


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(1, 20),
    pushes=st.integers(0, 50),
)
def test_property_buffer_size_never_exceeds_capacity(capacity, pushes):
    buffer = ReplayBuffer(capacity, 1, 1)
    for i in range(pushes):
        buffer.push([i], [0], 0.0, [0], False)
    assert len(buffer) == min(capacity, pushes)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.floats(0.0, 0.99))
def test_property_discounted_returns_recursion(seed, gamma):
    rng = np.random.default_rng(seed)
    rewards = rng.standard_normal(10)
    returns = discounted_returns(rewards, gamma)
    for t in range(9):
        assert returns[t] == pytest.approx(rewards[t] + gamma * returns[t + 1])
    assert returns[9] == pytest.approx(rewards[9])
