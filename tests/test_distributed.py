"""Tests for the message bus, agent nodes and the async-stack primitives
(shared-memory parameter server, transition queue, RNG codec)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    DistributedObservationService,
    MessageBus,
    OptionAnnouncement,
    ParameterServer,
    QueueClosed,
    RolloutPayload,
    ShmRingQueue,
    decode_rng_state,
    encode_rng_state,
    load_rng_state,
)


def announcement(sender: str, option: int = 0, timestamp: int = 0):
    return OptionAnnouncement(
        sender=sender, timestamp=timestamp, option=option, state=np.zeros(2)
    )


class TestMessageBus:
    def test_register_and_nodes(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        assert bus.nodes == ["a", "b"]

    def test_double_register_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(ValueError):
            bus.register("a")

    def test_unknown_recipient_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(KeyError):
            bus.send("ghost", announcement("a"))

    def test_zero_latency_delivers_next_step(self):
        bus = MessageBus(latency_steps=0)
        bus.register("a")
        bus.register("b")
        bus.send("b", announcement("a", option=2))
        assert bus.pending("b") == 0
        bus.step()
        messages = bus.receive("b")
        assert len(messages) == 1
        assert messages[0].option == 2

    def test_latency_delays_delivery(self):
        bus = MessageBus(latency_steps=3)
        bus.register("a")
        bus.register("b")
        bus.send("b", announcement("a"))
        for _ in range(3):
            assert bus.receive("b") == []
            bus.step()
        assert len(bus.receive("b")) == 1

    def test_broadcast_excludes_sender(self):
        bus = MessageBus()
        for node in ("a", "b", "c"):
            bus.register(node)
        bus.broadcast(announcement("a"))
        bus.step()
        assert bus.receive("a") == []
        assert len(bus.receive("b")) == 1
        assert len(bus.receive("c")) == 1

    def test_drop_probability_loses_messages(self):
        bus = MessageBus(drop_probability=0.5, seed=0)
        bus.register("a")
        bus.register("b")
        for _ in range(200):
            bus.send("b", announcement("a"))
        bus.step()
        received = len(bus.receive("b"))
        assert 60 < received < 140  # ~100 expected
        assert bus.stats()["dropped"] == 200 - received

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MessageBus(latency_steps=-1)
        with pytest.raises(ValueError):
            MessageBus(drop_probability=1.0)

    def test_messages_to_unregistered_node_vanish(self):
        bus = MessageBus(latency_steps=1)
        bus.register("a")
        bus.register("b")
        bus.send("b", announcement("a"))
        bus.unregister("b")
        bus.step()
        bus.step()
        assert bus.stats()["delivered"] == 0

    def test_fifo_order_preserved(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for option in (1, 2, 3):
            bus.send("b", announcement("a", option=option))
        bus.step()
        options = [m.option for m in bus.receive("b")]
        assert options == [1, 2, 3]


class TestAgentNode:
    def test_exchange_updates_last_known(self):
        service = DistributedObservationService(["a", "b", "c"], latency_steps=0)
        service.exchange(
            {
                "a": (1, np.zeros(2)),
                "b": (3, np.zeros(2)),
                "c": (2, np.zeros(2)),
            },
            timestamp=0,
        )
        np.testing.assert_array_equal(service.observed_options("a"), [3, 2])
        np.testing.assert_array_equal(service.observed_options("b"), [1, 2])

    def test_latency_shows_stale_options(self):
        service = DistributedObservationService(["a", "b"], latency_steps=2)
        service.exchange({"a": (1, np.zeros(1)), "b": (2, np.zeros(1))}, 0)
        # Not yet delivered: defaults (0) still visible.
        np.testing.assert_array_equal(service.observed_options("a"), [0])
        service.exchange({"a": (1, np.zeros(1)), "b": (3, np.zeros(1))}, 1)
        service.exchange({"a": (1, np.zeros(1)), "b": (3, np.zeros(1))}, 2)
        # Now the first announcement (option 2) has arrived — stale by design.
        assert service.observed_options("a")[0] in (2, 3)

    def test_lossy_bus_keeps_last_known(self):
        service = DistributedObservationService(
            ["a", "b"], latency_steps=0, drop_probability=0.9, seed=3
        )
        for t in range(50):
            service.exchange({"a": (1, np.zeros(1)), "b": (2, np.zeros(1))}, t)
        # Even at 90% loss, some message got through eventually.
        assert service.observed_options("a")[0] == 2


class TestRngCodec:
    def test_roundtrip_preserves_stream(self):
        gen = np.random.default_rng(42)
        gen.uniform(size=17)  # advance off the seed state
        words = encode_rng_state(gen)
        expected = gen.uniform(size=5)  # consumes the encoded state

        fresh = np.random.default_rng(0)
        load_rng_state(fresh, words)
        np.testing.assert_array_equal(fresh.uniform(size=5), expected)

    def test_decode_matches_bit_generator_state(self):
        gen = np.random.default_rng(7)
        state = decode_rng_state(encode_rng_state(gen))
        assert state == gen.bit_generator.state

    def test_load_is_in_place(self):
        # Components share Generator objects (agent + opponent model), so
        # restoring state must not swap the Generator out from under them.
        gen = np.random.default_rng(1)
        alias = gen
        load_rng_state(gen, encode_rng_state(np.random.default_rng(2)))
        assert alias is gen
        np.testing.assert_array_equal(
            alias.uniform(size=3), np.random.default_rng(2).uniform(size=3)
        )

    def test_wrong_word_count_rejected(self):
        with pytest.raises(ValueError):
            decode_rng_state(np.zeros(4, dtype=np.uint64))


class TestParameterServer:
    def test_publish_read_roundtrip(self):
        server = ParameterServer({"actor": 5, "critic": 3})
        try:
            assert server.version == -1
            vectors = {"actor": np.arange(5.0), "critic": np.ones(3)}
            assert server.publish(vectors) == 0
            version, read, _ = server.read()
            assert version == 0
            np.testing.assert_array_equal(read["actor"], np.arange(5.0))
            np.testing.assert_array_equal(read["critic"], np.ones(3))
        finally:
            server.release()

    def test_versions_increment_and_buffers_alternate(self):
        server = ParameterServer({"w": 2})
        try:
            for expected in range(4):
                assert server.publish({"w": np.full(2, float(expected))}) == expected
                version, read, _ = server.read(min_version=expected)
                assert version == expected
                np.testing.assert_array_equal(read["w"], np.full(2, float(expected)))
        finally:
            server.release()

    def test_read_returns_copies(self):
        server = ParameterServer({"w": 2})
        try:
            server.publish({"w": np.zeros(2)})
            _, read, _ = server.read()
            read["w"][:] = 99.0
            _, again, _ = server.read()
            np.testing.assert_array_equal(again["w"], np.zeros(2))
        finally:
            server.release()

    def test_read_times_out_without_version(self):
        server = ParameterServer({"w": 1})
        try:
            server.publish({"w": np.zeros(1)})
            with pytest.raises(TimeoutError):
                server.read(min_version=5, timeout=0.1)
        finally:
            server.release()

    def test_stop_interrupts_waiting_reader(self):
        server = ParameterServer({"w": 1})
        try:
            server.request_stop()
            with pytest.raises(RuntimeError, match="stopped"):
                server.read(min_version=0, timeout=5.0)
        finally:
            server.release()

    def test_rng_sidecar_roundtrip(self):
        server = ParameterServer({"w": 1}, num_rngs=2)
        try:
            words = np.stack(
                [
                    encode_rng_state(np.random.default_rng(3)),
                    encode_rng_state(np.random.default_rng(4)),
                ]
            )
            server.publish({"w": np.zeros(1)}, words)
            _, _, read_words = server.read()
            np.testing.assert_array_equal(read_words, words)
        finally:
            server.release()

    def test_missing_rng_sidecar_rejected(self):
        server = ParameterServer({"w": 1}, num_rngs=1)
        try:
            with pytest.raises(ValueError, match="RNG state"):
                server.publish({"w": np.zeros(1)})
        finally:
            server.release()

    def test_wrong_slot_keys_rejected(self):
        server = ParameterServer({"w": 1})
        try:
            with pytest.raises(ValueError):
                server.publish({"v": np.zeros(1)})
        finally:
            server.release()

    def test_wrong_slot_size_rejected(self):
        server = ParameterServer({"w": 2})
        try:
            with pytest.raises(ValueError):
                server.publish({"w": np.zeros(3)})
        finally:
            server.release()

    def test_pickled_handle_sees_publishes(self):
        import pickle

        server = ParameterServer({"w": 2})
        reader = None
        try:
            reader = pickle.loads(pickle.dumps(server))
            server.publish({"w": np.array([5.0, 6.0])})
            version, read, _ = reader.read()
            assert version == 0
            np.testing.assert_array_equal(read["w"], [5.0, 6.0])
        finally:
            if reader is not None:
                reader.release()
            server.release()


class TestShmRingQueue:
    def test_fifo_roundtrip(self):
        queue = ShmRingQueue(capacity=1 << 16)
        try:
            for i in range(5):
                queue.put({"index": i, "data": np.arange(i)})
            for i in range(5):
                frame = queue.get(timeout=1.0)
                assert frame["index"] == i
                np.testing.assert_array_equal(frame["data"], np.arange(i))
        finally:
            queue.release()

    def test_wraparound(self):
        # Capacity fits ~2 frames, so repeated put/get must wrap the ring.
        queue = ShmRingQueue(capacity=4096)
        try:
            payload = np.arange(128)
            for i in range(20):
                queue.put((i, payload))
                index, data = queue.get(timeout=1.0)
                assert index == i
                np.testing.assert_array_equal(data, payload)
            assert queue.qsize_bytes() == 0
        finally:
            queue.release()

    def test_oversized_frame_rejected(self):
        queue = ShmRingQueue(capacity=256)
        try:
            with pytest.raises(ValueError, match="exceeds queue capacity"):
                queue.put(np.zeros(10_000))
        finally:
            queue.release()

    def test_put_times_out_when_full(self):
        queue = ShmRingQueue(capacity=256)
        try:
            queue.put(b"x" * 150)
            with pytest.raises(TimeoutError):
                queue.put(b"y" * 150, timeout=0.2)
        finally:
            queue.release()

    def test_get_times_out_when_empty(self):
        queue = ShmRingQueue(capacity=256)
        try:
            with pytest.raises(TimeoutError):
                queue.get(timeout=0.2)
        finally:
            queue.release()

    def test_close_drains_then_raises(self):
        queue = ShmRingQueue(capacity=1 << 12)
        try:
            queue.put("last-frame")
            queue.close()
            with pytest.raises(QueueClosed):
                queue.put("rejected")
            assert queue.get(timeout=1.0) == "last-frame"
            with pytest.raises(QueueClosed):
                queue.get(timeout=1.0)
        finally:
            queue.release()

    def test_abort_callback_raises(self):
        queue = ShmRingQueue(capacity=256)
        try:
            with pytest.raises(RuntimeError, match="peer died"):
                queue.get(timeout=5.0, abort=lambda: "peer died")
        finally:
            queue.release()

    def test_payload_dataclass_roundtrip(self):
        queue = ShmRingQueue(capacity=1 << 12)
        try:
            sent = RolloutPayload(
                round_index=3,
                version_used=2,
                data={"stats": [1, 2]},
                rng_states=[encode_rng_state(np.random.default_rng(0))],
            )
            queue.put(sent)
            got = queue.get(timeout=1.0)
            assert got.round_index == 3
            assert got.version_used == 2
            assert got.data == {"stats": [1, 2]}
            np.testing.assert_array_equal(got.rng_states[0], sent.rng_states[0])
        finally:
            queue.release()


@settings(max_examples=25, deadline=None)
@given(
    latency=st.integers(0, 5),
    n_messages=st.integers(1, 20),
    seed=st.integers(0, 1000),
)
def test_property_lossless_bus_conserves_messages(latency, n_messages, seed):
    bus = MessageBus(latency_steps=latency, drop_probability=0.0, seed=seed)
    bus.register("a")
    bus.register("b")
    for i in range(n_messages):
        bus.send("b", announcement("a", option=i % 4))
    received = []
    for _ in range(latency + 1):
        bus.step()
        received.extend(bus.receive("b"))
    assert len(received) == n_messages


@settings(max_examples=25, deadline=None)
@given(drop=st.floats(0.0, 0.9), seed=st.integers(0, 1000))
def test_property_stats_balance(drop, seed):
    bus = MessageBus(drop_probability=drop, seed=seed)
    bus.register("a")
    bus.register("b")
    for _ in range(50):
        bus.send("b", announcement("a"))
    bus.step()
    bus.receive("b")
    stats = bus.stats()
    assert stats["sent"] == stats["dropped"] + stats["delivered"] + stats["in_flight"]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), draws=st.integers(0, 40))
def test_property_rng_codec_roundtrip(seed, draws):
    gen = np.random.default_rng(seed)
    gen.uniform(size=draws)
    words = encode_rng_state(gen)
    clone = np.random.default_rng(0)
    load_rng_state(clone, words)
    np.testing.assert_array_equal(
        clone.integers(0, 1 << 30, size=8), gen.integers(0, 1 << 30, size=8)
    )
