"""Tests for the message bus, agent nodes and parameter server."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SACAgent
from repro.distributed import (
    DistributedObservationService,
    MessageBus,
    OptionAnnouncement,
    ParameterServer,
    SharedCriticSynchroniser,
)


def announcement(sender: str, option: int = 0, timestamp: int = 0):
    return OptionAnnouncement(
        sender=sender, timestamp=timestamp, option=option, state=np.zeros(2)
    )


class TestMessageBus:
    def test_register_and_nodes(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        assert bus.nodes == ["a", "b"]

    def test_double_register_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(ValueError):
            bus.register("a")

    def test_unknown_recipient_rejected(self):
        bus = MessageBus()
        bus.register("a")
        with pytest.raises(KeyError):
            bus.send("ghost", announcement("a"))

    def test_zero_latency_delivers_next_step(self):
        bus = MessageBus(latency_steps=0)
        bus.register("a")
        bus.register("b")
        bus.send("b", announcement("a", option=2))
        assert bus.pending("b") == 0
        bus.step()
        messages = bus.receive("b")
        assert len(messages) == 1
        assert messages[0].option == 2

    def test_latency_delays_delivery(self):
        bus = MessageBus(latency_steps=3)
        bus.register("a")
        bus.register("b")
        bus.send("b", announcement("a"))
        for _ in range(3):
            assert bus.receive("b") == []
            bus.step()
        assert len(bus.receive("b")) == 1

    def test_broadcast_excludes_sender(self):
        bus = MessageBus()
        for node in ("a", "b", "c"):
            bus.register(node)
        bus.broadcast(announcement("a"))
        bus.step()
        assert bus.receive("a") == []
        assert len(bus.receive("b")) == 1
        assert len(bus.receive("c")) == 1

    def test_drop_probability_loses_messages(self):
        bus = MessageBus(drop_probability=0.5, seed=0)
        bus.register("a")
        bus.register("b")
        for _ in range(200):
            bus.send("b", announcement("a"))
        bus.step()
        received = len(bus.receive("b"))
        assert 60 < received < 140  # ~100 expected
        assert bus.stats()["dropped"] == 200 - received

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MessageBus(latency_steps=-1)
        with pytest.raises(ValueError):
            MessageBus(drop_probability=1.0)

    def test_messages_to_unregistered_node_vanish(self):
        bus = MessageBus(latency_steps=1)
        bus.register("a")
        bus.register("b")
        bus.send("b", announcement("a"))
        bus.unregister("b")
        bus.step()
        bus.step()
        assert bus.stats()["delivered"] == 0

    def test_fifo_order_preserved(self):
        bus = MessageBus()
        bus.register("a")
        bus.register("b")
        for option in (1, 2, 3):
            bus.send("b", announcement("a", option=option))
        bus.step()
        options = [m.option for m in bus.receive("b")]
        assert options == [1, 2, 3]


class TestAgentNode:
    def test_exchange_updates_last_known(self):
        service = DistributedObservationService(["a", "b", "c"], latency_steps=0)
        service.exchange(
            {
                "a": (1, np.zeros(2)),
                "b": (3, np.zeros(2)),
                "c": (2, np.zeros(2)),
            },
            timestamp=0,
        )
        np.testing.assert_array_equal(service.observed_options("a"), [3, 2])
        np.testing.assert_array_equal(service.observed_options("b"), [1, 2])

    def test_latency_shows_stale_options(self):
        service = DistributedObservationService(["a", "b"], latency_steps=2)
        service.exchange({"a": (1, np.zeros(1)), "b": (2, np.zeros(1))}, 0)
        # Not yet delivered: defaults (0) still visible.
        np.testing.assert_array_equal(service.observed_options("a"), [0])
        service.exchange({"a": (1, np.zeros(1)), "b": (3, np.zeros(1))}, 1)
        service.exchange({"a": (1, np.zeros(1)), "b": (3, np.zeros(1))}, 2)
        # Now the first announcement (option 2) has arrived — stale by design.
        assert service.observed_options("a")[0] in (2, 3)

    def test_history_accumulates(self):
        service = DistributedObservationService(["a", "b"], latency_steps=0)
        for t in range(5):
            service.exchange({"a": (1, np.zeros(1)), "b": (t % 4, np.zeros(1))}, t)
        node = service.nodes["a"]
        history = node.history_for("b")
        assert len(history) == 5
        assert [o for _, o in history] == [0, 1, 2, 3, 0]

    def test_lossy_bus_keeps_last_known(self):
        service = DistributedObservationService(
            ["a", "b"], latency_steps=0, drop_probability=0.9, seed=3
        )
        for t in range(50):
            service.exchange({"a": (1, np.zeros(1)), "b": (2, np.zeros(1))}, t)
        # Even at 90% loss, some message got through eventually.
        assert service.observed_options("a")[0] == 2


class TestParameterServer:
    def test_pull_before_aggregate_is_none(self):
        server = ParameterServer()
        assert server.pull("critic") is None

    def test_push_aggregate_pull_roundtrip(self):
        server = ParameterServer()
        server.push("critic", {"w": np.ones(3)})
        version = server.aggregate("critic")
        assert version == 1
        pulled_version, params = server.pull("critic")
        assert pulled_version == 1
        np.testing.assert_array_equal(params["w"], np.ones(3))

    def test_aggregation_averages(self):
        server = ParameterServer()
        server.push("critic", {"w": np.zeros(2)})
        server.push("critic", {"w": np.full(2, 4.0)})
        server.aggregate("critic")
        _, params = server.pull("critic")
        np.testing.assert_array_equal(params["w"], [2.0, 2.0])

    def test_mismatched_structure_rejected(self):
        server = ParameterServer()
        server.push("critic", {"w": np.zeros(2)})
        server.push("critic", {"v": np.zeros(2)})
        with pytest.raises(ValueError):
            server.aggregate("critic")

    def test_aggregate_without_pushes_keeps_version(self):
        server = ParameterServer()
        server.push("critic", {"w": np.zeros(1)})
        server.aggregate("critic")
        assert server.aggregate("critic") == 1

    def test_pull_returns_copies(self):
        server = ParameterServer()
        server.push("critic", {"w": np.zeros(2)})
        server.aggregate("critic")
        _, params = server.pull("critic")
        params["w"][:] = 99.0
        _, params2 = server.pull("critic")
        np.testing.assert_array_equal(params2["w"], [0.0, 0.0])

    def test_versions_increment(self):
        server = ParameterServer()
        for expected in (1, 2, 3):
            server.push("k", {"w": np.zeros(1)})
            assert server.aggregate("k") == expected


class TestSharedCriticSynchroniser:
    def _agents(self, n=2):
        return [
            SACAgent(
                obs_dim=3,
                action_dim=2,
                rng=np.random.default_rng(i),
                action_low=-1.0,
                action_high=1.0,
                batch_size=8,
                buffer_capacity=50,
            )
            for i in range(n)
        ]

    def test_sync_period(self):
        sync = SharedCriticSynchroniser(ParameterServer(), "critic", period=3)
        agents = self._agents()
        assert not sync.maybe_sync(agents)
        assert not sync.maybe_sync(agents)
        assert sync.maybe_sync(agents)

    def test_sync_equalises_critics(self):
        sync = SharedCriticSynchroniser(ParameterServer(), "critic", period=1)
        agents = self._agents()
        before = [a.critic.q1.trunk.net[0].weight.data.copy() for a in agents]
        assert not np.allclose(before[0], before[1])
        sync.maybe_sync(agents)
        after = [a.critic.q1.trunk.net[0].weight.data for a in agents]
        np.testing.assert_array_equal(after[0], after[1])
        np.testing.assert_allclose(after[0], (before[0] + before[1]) / 2)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            SharedCriticSynchroniser(ParameterServer(), "critic", period=0)


@settings(max_examples=25, deadline=None)
@given(
    latency=st.integers(0, 5),
    n_messages=st.integers(1, 20),
    seed=st.integers(0, 1000),
)
def test_property_lossless_bus_conserves_messages(latency, n_messages, seed):
    bus = MessageBus(latency_steps=latency, drop_probability=0.0, seed=seed)
    bus.register("a")
    bus.register("b")
    for i in range(n_messages):
        bus.send("b", announcement("a", option=i % 4))
    received = []
    for _ in range(latency + 1):
        bus.step()
        received.extend(bus.receive("b"))
    assert len(received) == n_messages


@settings(max_examples=25, deadline=None)
@given(drop=st.floats(0.0, 0.9), seed=st.integers(0, 1000))
def test_property_stats_balance(drop, seed):
    bus = MessageBus(drop_probability=drop, seed=seed)
    bus.register("a")
    bus.register("b")
    for _ in range(50):
        bus.send("b", announcement("a"))
    bus.step()
    bus.receive("b")
    stats = bus.stats()
    assert stats["sent"] == stats["dropped"] + stats["delivered"] + stats["in_flight"]
