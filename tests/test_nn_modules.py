"""Tests for modules, layers, convolution, optimisers and networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    CNNEncoder,
    CategoricalPolicy,
    Conv2d,
    DiscreteQNetwork,
    Dropout,
    Flatten,
    LayerNorm,
    Linear,
    MLP,
    MaxPool2d,
    Module,
    MultiHeadAttention,
    Parameter,
    QNetwork,
    RMSprop,
    SGD,
    Sequential,
    SquashedGaussianPolicy,
    Tensor,
    TwinQNetwork,
    clip_grad_norm,
    cross_entropy,
    exclude_self_mask,
    hard_update,
    huber_loss,
    mse_loss,
    soft_update,
)
from repro.nn.functional import (
    entropy_from_logits,
    gumbel_softmax,
    kl_from_logits,
    log_softmax,
    one_hot,
    sample_categorical,
    softmax,
)


RNG = np.random.default_rng


class TestLinearAndMLP:
    def test_linear_shapes(self):
        layer = Linear(4, 3, RNG(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, RNG(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_bad_init_rejected(self):
        with pytest.raises(ValueError):
            Linear(2, 2, RNG(0), weight_init="nope")

    def test_mlp_forward_and_grad(self):
        mlp = MLP(3, [8, 8], 2, RNG(0))
        x = Tensor(RNG(1).standard_normal((4, 3)))
        loss = (mlp(x) ** 2).mean()
        loss.backward()
        grads = [p.grad for p in mlp.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).sum() > 0 for g in grads)

    def test_mlp_accepts_numpy(self):
        mlp = MLP(3, [4], 2, RNG(0))
        out = mlp(np.zeros((2, 3)))
        assert out.shape == (2, 2)

    def test_mlp_tanh_output(self):
        mlp = MLP(3, [4], 2, RNG(0), output_activation="tanh")
        out = mlp(np.full((2, 3), 100.0))
        assert np.all(np.abs(out.data) <= 1.0)


class TestModuleSystem:
    def _make(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.fc1 = Linear(2, 3, RNG(0))
                self.fc2 = Linear(3, 1, RNG(1))
                self.extra = Parameter(np.zeros(5))

            def forward(self, x):
                return self.fc2(self.fc1(x).relu())

        return Net()

    def test_named_parameters_deterministic(self):
        net = self._make()
        names = [n for n, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "extra"]

    def test_state_dict_roundtrip(self):
        net1, net2 = self._make(), self._make()
        net2.fc1.weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        np.testing.assert_array_equal(net2.fc1.weight.data, net1.fc1.weight.data)

    def test_state_dict_mismatch_raises(self):
        net = self._make()
        state = net.state_dict()
        del state["extra"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        net = self._make()
        state = net.state_dict()
        state["extra"] = np.zeros(6)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_save_load(self, tmp_path):
        net1, net2 = self._make(), self._make()
        path = tmp_path / "net.npz"
        net1.save(path)
        net2.load(path)
        for (_, p1), (_, p2) in zip(net1.named_parameters(), net2.named_parameters()):
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_soft_update_moves_toward_source(self):
        target, source = self._make(), self._make()
        source.fc1.weight.data[:] = 1.0
        target.fc1.weight.data[:] = 0.0
        soft_update(target, source, tau=0.1)
        np.testing.assert_allclose(target.fc1.weight.data, 0.1)

    def test_hard_update_copies(self):
        target, source = self._make(), self._make()
        hard_update(target, source)
        np.testing.assert_array_equal(target.fc1.weight.data, source.fc1.weight.data)

    def test_train_eval_propagates(self):
        net = Sequential(Linear(2, 2, RNG(0)), Dropout(0.5, RNG(0)))
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_num_parameters(self):
        net = self._make()
        assert net.num_parameters() == 2 * 3 + 3 + 3 * 1 + 1 + 5

    def test_zero_grad(self):
        net = self._make()
        (net(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestLayerNormDropout:
    def test_layernorm_normalises(self):
        ln = LayerNorm(8)
        x = Tensor(RNG(0).standard_normal((4, 8)) * 10 + 5)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_grad_flows(self):
        ln = LayerNorm(4)
        x = Tensor(RNG(0).standard_normal((2, 4)), requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None
        assert ln.gamma.grad is not None

    def test_dropout_eval_is_identity(self):
        drop = Dropout(0.5, RNG(0))
        drop.eval()
        x = Tensor(np.ones((3, 3)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_dropout_train_scales(self):
        drop = Dropout(0.5, RNG(0))
        x = Tensor(np.ones((1000,)))
        out = drop(x).data
        # Survivors are scaled by 1/keep; mean stays near 1.
        assert abs(out.mean() - 1.0) < 0.15
        assert set(np.round(np.unique(out), 6)) <= {0.0, 2.0}

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0, RNG(0))


class TestConv:
    def test_conv_output_shape(self):
        conv = Conv2d(2, 4, kernel_size=3, rng=RNG(0), padding=1)
        out = conv(Tensor(np.zeros((3, 2, 8, 8))))
        assert out.shape == (3, 4, 8, 8)

    def test_conv_stride(self):
        conv = Conv2d(1, 1, kernel_size=3, rng=RNG(0), stride=2)
        out = conv(Tensor(np.zeros((1, 1, 9, 9))))
        assert out.shape == (1, 1, 4, 4)

    def test_conv_matches_manual_correlation(self):
        conv = Conv2d(1, 1, kernel_size=2, rng=RNG(0), bias=False)
        conv.weight.data[:] = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        x = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = conv(Tensor(x)).data
        expected = np.array(
            [
                [x[0, 0, i : i + 2, j : j + 2].flatten() @ [1, 2, 3, 4] for j in range(2)]
                for i in range(2)
            ]
        )
        np.testing.assert_allclose(out[0, 0], expected)

    def test_conv_gradient_numeric(self):
        rng = RNG(3)
        conv = Conv2d(2, 3, kernel_size=3, rng=rng, padding=1)
        x = rng.standard_normal((2, 2, 5, 5))

        xt = Tensor(x, requires_grad=True)
        out = (conv(xt) ** 2).sum()
        out.backward()
        analytic_w = conv.weight.grad.copy()

        eps = 1e-6
        flat = conv.weight.data.reshape(-1)
        for idx in [0, 7, 23]:
            orig = flat[idx]
            flat[idx] = orig + eps
            up = float((conv(Tensor(x)) ** 2).sum().data)
            flat[idx] = orig - eps
            down = float((conv(Tensor(x)) ** 2).sum().data)
            flat[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - analytic_w.reshape(-1)[idx]) < 1e-4

    def test_conv_input_gradient_numeric(self):
        rng = RNG(4)
        conv = Conv2d(1, 2, kernel_size=3, rng=rng, padding=1)
        x = rng.standard_normal((1, 1, 4, 4))
        xt = Tensor(x.copy(), requires_grad=True)
        (conv(xt) ** 2).sum().backward()
        eps = 1e-6
        flat = x.reshape(-1)
        for idx in [0, 5, 15]:
            orig = flat[idx]
            flat[idx] = orig + eps
            up = float((conv(Tensor(x)) ** 2).sum().data)
            flat[idx] = orig - eps
            down = float((conv(Tensor(x)) ** 2).sum().data)
            flat[idx] = orig
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - xt.grad.reshape(-1)[idx]) < 1e-4

    def test_conv_rejects_3d_input(self):
        conv = Conv2d(1, 1, kernel_size=3, rng=RNG(0))
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((1, 8, 8))))

    def test_maxpool(self):
        pool = MaxPool2d(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = pool(Tensor(x)).data
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_gradient_routes_to_max(self):
        pool = MaxPool2d(2)
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4), requires_grad=True)
        pool(x).sum().backward()
        grad = x.grad[0, 0]
        assert grad[1, 1] == 1 and grad[1, 3] == 1 and grad[3, 1] == 1 and grad[3, 3] == 1
        assert grad.sum() == 4

    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4, 5))))
        assert out.shape == (2, 60)

    def test_cnn_encoder(self):
        enc = CNNEncoder(in_channels=2, image_size=16, out_features=10, rng=RNG(0))
        out = enc(np.zeros((3, 2, 16, 16)))
        assert out.shape == (3, 10)


class TestOptimizers:
    @staticmethod
    def _quadratic_problem(opt_cls, lr, steps=400, **kwargs):
        rng = RNG(0)
        target = rng.standard_normal(6)
        param = Parameter(np.zeros(6))
        opt = opt_cls([param], lr=lr, **kwargs)
        for _ in range(steps):
            opt.zero_grad()
            loss = ((param - Tensor(target)) ** 2).sum()
            loss.backward()
            opt.step()
        return param.data, target

    def test_sgd_converges(self):
        value, target = self._quadratic_problem(SGD, lr=0.1)
        np.testing.assert_allclose(value, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        value, target = self._quadratic_problem(SGD, lr=0.02, momentum=0.9)
        np.testing.assert_allclose(value, target, atol=1e-4)

    def test_adam_converges(self):
        value, target = self._quadratic_problem(Adam, lr=0.05)
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_rmsprop_converges(self):
        value, target = self._quadratic_problem(RMSprop, lr=0.01)
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_negative_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_step_skips_params_without_grad(self):
        p = Parameter(np.ones(3))
        opt = SGD([p], lr=0.5)
        opt.step()  # no grad accumulated -> no change
        np.testing.assert_array_equal(p.data, np.ones(3))

    def test_clip_grad_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_noop_below_threshold(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1)
        clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, 0.1)

    def test_clip_grad_norm_empty(self):
        p = Parameter(np.zeros(4))
        assert clip_grad_norm([p], max_norm=1.0) == 0.0


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        loss = mse_loss(pred, np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(2.5)

    def test_huber_quadratic_region(self):
        pred = Tensor(np.array([0.5]), requires_grad=True)
        loss = huber_loss(pred, np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(0.125)

    def test_huber_linear_region(self):
        pred = Tensor(np.array([3.0]), requires_grad=True)
        loss = huber_loss(pred, np.array([0.0]), delta=1.0)
        assert loss.item() == pytest.approx(2.5)  # 0.5 + (3-1)*1

    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0, -1.0]]), requires_grad=True)
        targets = np.array([0])
        loss = cross_entropy(logits, targets)
        manual = -np.log(np.exp(2.0) / np.exp([2.0, 0.0, -1.0]).sum())
        assert loss.item() == pytest.approx(manual)

    def test_cross_entropy_grad_is_probs_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 3.0]]), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        probs = np.exp([1.0, 2.0, 3.0]) / np.exp([1.0, 2.0, 3.0]).sum()
        expected = probs - np.array([0.0, 1.0, 0.0])
        np.testing.assert_allclose(logits.grad[0], expected, atol=1e-10)


class TestFunctional:
    def test_softmax_rows_sum_to_one(self):
        x = Tensor(RNG(0).standard_normal((5, 7)))
        np.testing.assert_allclose(softmax(x).data.sum(axis=-1), 1.0, atol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]]))
        out = softmax(x).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_log_softmax_consistent(self):
        x = Tensor(RNG(1).standard_normal((3, 4)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-12
        )

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_entropy_uniform_is_log_n(self):
        logits = Tensor(np.zeros((1, 4)))
        assert entropy_from_logits(logits).data[0] == pytest.approx(np.log(4))

    def test_kl_self_is_zero(self):
        logits = Tensor(RNG(0).standard_normal((2, 5)))
        np.testing.assert_allclose(kl_from_logits(logits, logits).data, 0.0, atol=1e-12)

    def test_kl_nonnegative(self):
        p = Tensor(RNG(0).standard_normal((4, 5)))
        q = Tensor(RNG(1).standard_normal((4, 5)))
        assert np.all(kl_from_logits(p, q).data >= -1e-12)

    def test_gumbel_softmax_hard_is_onehot(self):
        logits = Tensor(RNG(0).standard_normal((6, 4)), requires_grad=True)
        out = gumbel_softmax(logits, RNG(1), hard=True)
        data = out.data
        np.testing.assert_allclose(data.sum(axis=-1), 1.0)
        assert set(np.unique(data)) <= {0.0, 1.0}

    def test_gumbel_softmax_gradient_flows(self):
        logits = Tensor(RNG(0).standard_normal((6, 4)), requires_grad=True)
        out = gumbel_softmax(logits, RNG(1), hard=True)
        (out * Tensor(np.arange(4.0))).sum().backward()
        assert logits.grad is not None
        assert np.abs(logits.grad).sum() > 0

    def test_sample_categorical_respects_distribution(self):
        logits = np.log(np.array([0.7, 0.2, 0.1]))
        rng = RNG(2)
        samples = np.array([sample_categorical(logits, rng) for _ in range(4000)])
        freq = np.bincount(samples, minlength=3) / len(samples)
        np.testing.assert_allclose(freq, [0.7, 0.2, 0.1], atol=0.04)

    def test_sample_categorical_batched(self):
        logits = np.zeros((10, 3))
        out = sample_categorical(logits, RNG(0))
        assert out.shape == (10,)
        assert np.all((out >= 0) & (out < 3))


class TestPolicies:
    def test_categorical_policy_sample_range(self):
        policy = CategoricalPolicy(4, 3, RNG(0))
        obs = RNG(1).standard_normal((6, 4))
        actions = policy.sample(obs, RNG(2))
        assert actions.shape == (6,)
        assert np.all((actions >= 0) & (actions < 3))

    def test_categorical_policy_greedy_matches_argmax(self):
        policy = CategoricalPolicy(4, 3, RNG(0))
        obs = RNG(1).standard_normal((5, 4))
        np.testing.assert_array_equal(
            policy.greedy(obs), policy.forward(obs).data.argmax(axis=-1)
        )

    def test_gaussian_policy_respects_bounds(self):
        low, high = np.array([0.04, -0.1]), np.array([0.08, 0.1])
        policy = SquashedGaussianPolicy(
            3, 2, RNG(0), action_low=low, action_high=high
        )
        obs = RNG(1).standard_normal((50, 3))
        actions, log_probs = policy.sample(obs, RNG(2))
        assert np.all(actions.data >= low - 1e-9)
        assert np.all(actions.data <= high + 1e-9)
        assert log_probs.shape == (50,)

    def test_gaussian_policy_invalid_bounds(self):
        with pytest.raises(ValueError):
            SquashedGaussianPolicy(3, 2, RNG(0), action_low=1.0, action_high=0.0)

    def test_gaussian_log_prob_matches_monte_carlo_scale(self):
        # For a wide-bound policy the density should integrate to ~1:
        # check log_prob is a proper density via importance check on 1-D.
        policy = SquashedGaussianPolicy(2, 1, RNG(0), action_low=-2.0, action_high=2.0)
        obs = np.zeros((2000, 2))
        actions, log_probs = policy.sample(obs, RNG(3))
        # E[1/p(a)] over samples of p spans the support volume (4 here).
        est = np.exp(-log_probs.data).mean()
        assert 1.0 < est < 10.0

    def test_gaussian_deterministic_inside_bounds(self):
        policy = SquashedGaussianPolicy(3, 2, RNG(0), action_low=-1.0, action_high=1.0)
        act = policy.deterministic(RNG(1).standard_normal((4, 3)))
        assert np.all(np.abs(act) <= 1.0)

    def test_gaussian_set_bounds(self):
        policy = SquashedGaussianPolicy(3, 1, RNG(0))
        policy.set_bounds(0.1, 0.2)
        actions, _ = policy.sample(np.zeros((20, 3)), RNG(1))
        assert np.all(actions.data >= 0.1 - 1e-9)
        assert np.all(actions.data <= 0.2 + 1e-9)

    def test_qnetwork_scalar_output(self):
        q = QNetwork(4, 2, RNG(0))
        out = q(np.zeros((7, 4)), np.zeros((7, 2)))
        assert out.shape == (7,)

    def test_twin_q_min(self):
        twin = TwinQNetwork(4, 2, RNG(0))
        obs, act = np.zeros((5, 4)), np.zeros((5, 2))
        q1, q2 = twin(obs, act)
        min_q = twin.min_q(obs, act)
        np.testing.assert_allclose(min_q.data, np.minimum(q1.data, q2.data))

    def test_discrete_qnetwork(self):
        q = DiscreteQNetwork(4, 5, RNG(0))
        assert q(np.zeros((3, 4))).shape == (3, 5)


class TestAttention:
    def test_multihead_shapes(self):
        attn = MultiHeadAttention(model_dim=16, num_heads=4, rng=RNG(0))
        x = Tensor(RNG(1).standard_normal((2, 5, 16)))
        out = attn(x, x)
        assert out.shape == (2, 5, 16)

    def test_multihead_output_dim(self):
        attn = MultiHeadAttention(16, 2, RNG(0), output_dim=8)
        x = Tensor(np.zeros((1, 3, 16)))
        assert attn(x, x).shape == (1, 3, 8)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, RNG(0))

    def test_exclude_self_mask(self):
        mask = exclude_self_mask(3)
        assert mask.shape == (3, 3)
        assert not mask.diagonal().any()
        assert mask.sum() == 6

    def test_mask_blocks_self_attention(self):
        attn = MultiHeadAttention(8, 1, RNG(0))
        x = Tensor(RNG(1).standard_normal((1, 3, 8)), requires_grad=True)
        mask = exclude_self_mask(3)[None]
        out = attn(x, x, mask=mask)
        # Gradient of agent 0's output w.r.t. agent 0's value path exists
        # only through queries, so just sanity-check grad flow and shape.
        out.sum().backward()
        assert out.shape == (1, 3, 8)
        assert x.grad is not None

    def test_attention_gradients_flow(self):
        attn = MultiHeadAttention(8, 2, RNG(0))
        x = Tensor(RNG(1).standard_normal((2, 4, 8)), requires_grad=True)
        attn(x, x).sum().backward()
        assert all(p.grad is not None for p in attn.parameters())


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), batch=st.integers(1, 8))
def test_property_squashed_policy_bounds_hold(seed, batch):
    rng = RNG(seed)
    low = rng.uniform(-1.0, 0.0, size=2)
    high = low + rng.uniform(0.1, 2.0, size=2)
    policy = SquashedGaussianPolicy(3, 2, rng, action_low=low, action_high=high)
    actions, _ = policy.sample(rng.standard_normal((batch, 3)), rng)
    assert np.all(actions.data >= low - 1e-9)
    assert np.all(actions.data <= high + 1e-9)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_soft_update_is_convex_combination(seed):
    rng = RNG(seed)
    a = Linear(3, 3, rng)
    b = Linear(3, 3, rng)
    before = a.weight.data.copy()
    tau = float(rng.uniform(0.01, 0.99))
    soft_update(a, b, tau)
    expected = (1 - tau) * before + tau * b.weight.data
    np.testing.assert_allclose(a.weight.data, expected, atol=1e-12)
