"""Sharded multi-process rollout engine: equivalence + lifecycle locks.

The contract under test (``repro.envs.sharded_env``):

* ``ShardedVectorEnv(N, num_workers=W)`` is **bit-for-bit** equal to the
  single-process ``VectorEnv(N)`` for any ``W`` — observations, rewards,
  dones, episode summaries, terminal observations, exact pose mirrors,
  seeded and unseeded (auto-)resets — across every scripted-traffic
  variant with a vectorized kernel;
* training and greedy evaluation through the engine are bit-for-bit
  equal to their single-process counterparts (HERO and one baseline here;
  ``benchmarks/smoke_table2_cell.py --num-workers`` covers the baselines
  in CI);
* a worker that raises surfaces a ``RuntimeError`` naming its global env
  range; a worker that *dies* is detected and surfaced the same way;
* ``close()`` (and the context manager) leaves no orphan processes and
  unlinks the shared-memory block, and the engine works under the
  ``spawn`` start method (module-level entrypoint, picklable factories).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.baselines import make_baseline, train_marl_vectorized
from repro.config import ScenarioConfig, TrainingConfig
from repro.core import HeroTeam, train_hero
from repro.core.trainer import evaluate_hero_vectorized
from repro.envs import (
    CooperativeLaneChangeEnv,
    EnvReplicaFactory,
    LaneKeepingCruiser,
    ScriptedPolicy,
    ShardedVectorEnv,
    StationaryObstacle,
    VectorEnv,
    make_baseline_vector_env,
)

# Short episodes so every rollout below crosses auto-resets, which is
# where per-env RNG-stream alignment across worker counts would break.
SCENARIO = ScenarioConfig(episode_length=5)

FACTORIES = {
    "slow_leader": EnvReplicaFactory(scenario=SCENARIO),
    "cruiser": EnvReplicaFactory(
        scenario=SCENARIO, scripted_policy=LaneKeepingCruiser()
    ),
    "obstacle": EnvReplicaFactory(
        scenario=SCENARIO, scripted_policy=StationaryObstacle()
    ),
}


def _assert_step_equal(ref_out, sharded_out) -> None:
    obs_r, rew_r, done_r, infos_r = ref_out
    obs_s, rew_s, done_s, infos_s = sharded_out
    assert obs_r.keys() == obs_s.keys()
    for key in obs_r:
        np.testing.assert_array_equal(obs_r[key], obs_s[key])
    np.testing.assert_array_equal(rew_r, rew_s)
    np.testing.assert_array_equal(done_r, done_s)
    assert len(infos_r) == len(infos_s)
    for info_r, info_s in zip(infos_r, infos_s):
        assert info_r["t"] == info_s["t"]
        assert ("episode" in info_r) == ("episode" in info_s)
        if "episode" in info_r:
            assert info_r["episode"] == info_s["episode"]
            term_r = info_r["terminal_observation"]
            term_s = info_s["terminal_observation"]
            for key in term_r:
                np.testing.assert_array_equal(term_r[key], term_s[key])


def _roll_both(ref: VectorEnv, sharded: ShardedVectorEnv, steps: int, seed: int):
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        actions = rng.uniform(
            [0.0, -0.5], [0.3, 0.5], size=(ref.num_envs, ref.num_agents, 2)
        )
        _assert_step_equal(ref.step(actions), sharded.step(actions))
        np.testing.assert_array_equal(ref.agent_d, sharded.agent_d)
        np.testing.assert_array_equal(ref.agent_heading, sharded.agent_heading)
        np.testing.assert_array_equal(ref.lane_ids, sharded.lane_ids)
        np.testing.assert_array_equal(ref.lane_deviation, sharded.lane_deviation)


@pytest.mark.parametrize("traffic", sorted(FACTORIES))
@pytest.mark.parametrize("num_workers", [1, 2, 3])
def test_sharded_matches_single_process(traffic: str, num_workers: int):
    """Bit-for-bit obs/reward/done equality at W in {1, 2, 3} (uneven shards)."""
    factory = FACTORIES[traffic]
    n = 5
    ref = VectorEnv(n, env_fns=[factory] * n)
    assert ref.fast_path, ref.fallback_reason
    with ShardedVectorEnv(n, env_factory=factory, num_workers=num_workers) as sharded:
        assert sharded.fast_path
        assert sharded.num_workers == num_workers
        # Seeded reset: identical stacked observations.
        obs_ref = ref.reset(11)
        obs_sh = sharded.reset(11)
        for key in obs_ref:
            np.testing.assert_array_equal(obs_ref[key], obs_sh[key])
        # 12 steps over 5-step episodes: every env auto-resets (unseeded,
        # continuing the global-index-aligned RNG streams) at least twice.
        _roll_both(ref, sharded, steps=12, seed=3)
        # Seeded single-env reset mid-run, then keep rolling.
        row_ref = ref.reset_env(2, seed=99)
        row_sh = sharded.reset_env(2, seed=99)
        for key in row_ref:
            np.testing.assert_array_equal(row_ref[key], row_sh[key])
        _roll_both(ref, sharded, steps=6, seed=4)
        # Unseeded full reset continues every env's own stream identically.
        obs_ref = ref.reset()
        obs_sh = sharded.reset()
        for key in obs_ref:
            np.testing.assert_array_equal(obs_ref[key], obs_sh[key])


def test_sharded_spawn_context_matches():
    """The worker entrypoint survives the spawn start method bitwise."""
    factory = FACTORIES["slow_leader"]
    ref = VectorEnv(4, env_fns=[factory] * 4)
    sharded = ShardedVectorEnv(4, env_factory=factory, num_workers=2, context="spawn")
    try:
        obs_ref = ref.reset(7)
        obs_sh = sharded.reset(7)
        for key in obs_ref:
            np.testing.assert_array_equal(obs_ref[key], obs_sh[key])
        _roll_both(ref, sharded, steps=7, seed=1)
    finally:
        sharded.close()
    assert all(not proc.is_alive() for proc in sharded.processes)


def test_interface_metadata_matches_template():
    """Static surface (spaces, dims, track, shards) mirrors VectorEnv's."""
    factory = FACTORIES["slow_leader"]
    ref = VectorEnv(5, env_fns=[factory] * 5)
    with ShardedVectorEnv(5, env_factory=factory, num_workers=3) as sharded:
        assert sharded.agents == ref.agents
        assert sharded.num_agents == ref.num_agents
        assert sharded.high_level_obs_dim == ref.high_level_obs_dim
        assert sharded.low_level_obs_dim == ref.low_level_obs_dim
        assert sharded.track.length == ref.track.length
        assert sharded.template_env.agents == ref.template_env.agents
        # Contiguous shards covering [0, N) in order.
        assert sharded.shards[0][0] == 0
        assert sharded.shards[-1][1] == 5
        for (lo_a, hi_a), (lo_b, hi_b) in zip(sharded.shards, sharded.shards[1:]):
            assert hi_a == lo_b


# ----------------------------------------------------------------------
# Training / evaluation equivalence through the engine
# ----------------------------------------------------------------------
def _train_hero_logger(num_workers: int):
    config = TrainingConfig(seed=0)
    config.scenario = SCENARIO
    env = CooperativeLaneChangeEnv(scenario=SCENARIO)
    team = HeroTeam(env, np.random.default_rng(0), batch_size=32)
    logger = train_hero(
        env,
        team,
        episodes=3,
        config=config,
        num_envs=2,
        num_workers=num_workers,
        eval_every=2,
        eval_episodes=2,
    )
    return logger, team


def test_train_hero_sharded_matches_single_process():
    """train_hero(num_envs=2) is bit-for-bit identical at W=2 and W=1."""
    log_single, _ = _train_hero_logger(num_workers=1)
    log_sharded, _ = _train_hero_logger(num_workers=2)
    assert log_single.names() == log_sharded.names()
    for name in log_single.names():
        np.testing.assert_array_equal(
            log_single.values(name), log_sharded.values(name), err_msg=name
        )


def test_evaluate_hero_sharded_matches_single_process():
    """Greedy evaluation over the sharded engine replays the same episodes."""
    _, team = _train_hero_logger(num_workers=1)
    factory = FACTORIES["slow_leader"]
    ref = VectorEnv(3, env_fns=[factory] * 3)
    metrics_single = evaluate_hero_vectorized(ref, team, episodes=4, seed=5)
    with ShardedVectorEnv(3, env_factory=factory, num_workers=2) as sharded:
        metrics_sharded = evaluate_hero_vectorized(sharded, team, episodes=4, seed=5)
    assert metrics_single == metrics_sharded


def test_train_marl_sharded_matches_single_process():
    """train_marl_vectorized over a sharded baseline env is bit-for-bit."""

    def run(num_workers: int):
        vec_env = make_baseline_vector_env(
            2, scenario=SCENARIO, num_workers=num_workers
        )
        algo = make_baseline("idqn", vec_env, seed=0, batch_size=16)
        try:
            return train_marl_vectorized(
                vec_env, algo, episodes=3, seed=0, eval_episodes=2
            )
        finally:
            vec_env.close()

    log_single = run(num_workers=1)
    log_sharded = run(num_workers=2)
    assert log_single.names() == log_sharded.names()
    for name in log_single.names():
        np.testing.assert_array_equal(
            log_single.values(name), log_sharded.values(name), err_msg=name
        )


# ----------------------------------------------------------------------
# Fallback surfacing
# ----------------------------------------------------------------------
class _CrawlPolicy(ScriptedPolicy):
    """A scripted policy without a vectorized kernel (forces the fallback)."""

    def act(self, vehicle, all_vehicles):
        return 0.02, 0.0


def test_fallback_reason_forwarded_from_workers():
    factory = EnvReplicaFactory(scenario=SCENARIO, scripted_policy=_CrawlPolicy())
    with ShardedVectorEnv(2, env_factory=factory, num_workers=2) as sharded:
        assert not sharded.fast_path
        assert "_CrawlPolicy" in sharded.fallback_reason
        # Fallback shards still step correctly (scalar path inside workers).
        obs = sharded.reset(0)
        assert obs["lidar"].shape[0] == 2


def test_train_hero_warns_on_scalar_fallback():
    """The vectorized HERO loop must say why --num-envs is not helping."""
    env = CooperativeLaneChangeEnv(scenario=SCENARIO, scripted_policy=_CrawlPolicy())
    team = HeroTeam(env, np.random.default_rng(0), batch_size=32)
    config = TrainingConfig(seed=0)
    config.scenario = SCENARIO
    with pytest.warns(RuntimeWarning, match="scalar fallback"):
        train_hero(env, team, episodes=1, config=config, num_envs=2, eval_every=0)


# ----------------------------------------------------------------------
# Failure propagation + lifecycle
# ----------------------------------------------------------------------
class _ExplodingEnv(CooperativeLaneChangeEnv):
    """Raises after two steps (also drops the shard to the scalar path)."""

    def step(self, actions):
        if self._t >= 2:
            raise RuntimeError("injected failure")
        return super().step(actions)


class _ExplodingFactory:
    def __init__(self, scenario):
        self.scenario = scenario

    def __call__(self):
        return _ExplodingEnv(scenario=self.scenario)


class _DyingEnv(CooperativeLaneChangeEnv):
    """Kills its worker process outright mid-step."""

    def step(self, actions):
        os._exit(43)


class _DyingFactory:
    def __init__(self, scenario):
        self.scenario = scenario

    def __call__(self):
        return _DyingEnv(scenario=self.scenario)


def _step_until_error(sharded: ShardedVectorEnv, steps: int = 10):
    actions = np.zeros((sharded.num_envs, sharded.num_agents, 2))
    sharded.reset(0)
    for _ in range(steps):
        sharded.step(actions)


def test_worker_exception_names_failing_envs():
    sharded = ShardedVectorEnv(
        4, env_factory=_ExplodingFactory(SCENARIO), num_workers=2
    )
    try:
        with pytest.raises(RuntimeError, match=r"envs \[0, 2\).*injected failure"):
            _step_until_error(sharded)
    finally:
        sharded.close()
    assert all(not proc.is_alive() for proc in sharded.processes)


def test_worker_death_names_failing_envs():
    sharded = ShardedVectorEnv(4, env_factory=_DyingFactory(SCENARIO), num_workers=2)
    try:
        with pytest.raises(RuntimeError, match=r"worker \d+ \(envs \[\d, \d\)\) died"):
            _step_until_error(sharded)
        # A death leaves replies undrained — the engine must refuse to run
        # further commands (a retry would consume stale replies) rather
        # than silently return a previous command's data.
        with pytest.raises(RuntimeError, match="broken"):
            sharded.step(np.zeros((4, sharded.num_agents, 2)))
    finally:
        sharded.close()
    assert all(not proc.is_alive() for proc in sharded.processes)


def test_close_is_idempotent_and_leaves_no_orphans():
    factory = FACTORIES["slow_leader"]
    before = {proc.pid for proc in mp.active_children()}
    sharded = ShardedVectorEnv(4, env_factory=factory, num_workers=2)
    shm_name = sharded._shm.name
    sharded.reset(0)
    sharded.step(np.zeros((4, sharded.num_agents, 2)))
    sharded.close()
    assert all(not proc.is_alive() for proc in sharded.processes)
    after = {proc.pid for proc in mp.active_children()}
    assert after <= before, "sharded workers leaked past close()"
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=shm_name)
    sharded.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        sharded.reset(0)


def test_constructor_validation():
    factory = FACTORIES["slow_leader"]
    with pytest.raises(ValueError, match="num_envs"):
        ShardedVectorEnv(0, env_factory=factory, num_workers=1)
    with pytest.raises(ValueError, match="num_workers"):
        ShardedVectorEnv(2, env_factory=factory, num_workers=0)
    with pytest.raises(ValueError, match="observation_mode"):
        ShardedVectorEnv(
            2,
            scenario=ScenarioConfig(observation_mode="image"),
            num_workers=1,
        )
    # More workers than envs clamps instead of idling empty shards.
    with ShardedVectorEnv(2, env_factory=factory, num_workers=5) as sharded:
        assert sharded.num_workers == 2
